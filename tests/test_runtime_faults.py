"""Failure-injection tests: transient service faults, crashes, restarts."""

import pytest

from repro.core.attributes import Attribute
from repro.core.runtime import BitDewEnvironment
from repro.net.rpc import RpcError
from repro.net.topology import cluster_topology
from repro.storage.filesystem import FileContent


def build(env, n_workers=3, **kwargs):
    topo = cluster_topology(env, n_workers=n_workers)
    kwargs.setdefault("sync_period_s", 1.0)
    kwargs.setdefault("monitor_period_s", 0.2)
    return topo, BitDewEnvironment(topo, **kwargs)


class TestServiceHostTransientFault:
    def test_rpc_to_down_service_raises_and_recovers(self, env, drive):
        topo, runtime = build(env)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        topo.service_host.fail()

        def call():
            yield from agent.invoke("dc", "find_by_name", "anything")

        process = env.process(call())
        with pytest.raises(RpcError):
            env.run(until=process)

        # The paper's fault model for service nodes is transient: after a
        # restart by the administrator, clients simply resume.
        topo.service_host.recover()
        result = drive(env, agent.invoke("dc", "find_by_name", "anything"))
        assert result == []

    def test_sync_loop_survives_service_outage(self, env, drive):
        topo, runtime = build(env)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("blob", 4)

        def publish():
            data = yield from master.bitdew.create_data("blob", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(
                data, Attribute(name="all", replica=-1, protocol="http"))
            return data

        data = drive(env, publish())
        workers = runtime.attach_all()
        # Take the service host down before any worker manages to sync.
        topo.service_host.fail()
        runtime.run(until=10)
        assert not any(a.has_content(data.uid) for a in workers)
        # Bring it back: the pull loops keep retrying and eventually succeed.
        topo.service_host.recover()
        runtime.run(until=60)
        assert all(a.has_content(data.uid) for a in workers)


class TestWorkerCrashAndRestart:
    def test_restart_gets_a_fresh_cache_and_resyncs(self, env, drive):
        topo, runtime = build(env, n_workers=2)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("blob", 4)

        def publish():
            data = yield from master.bitdew.create_data("blob", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(
                data, Attribute(name="all", replica=-1, protocol="http"))
            return data

        data = drive(env, publish())
        workers = runtime.attach_all()
        runtime.run(until=20)
        victim = workers[0]
        assert victim.has_content(data.uid)

        runtime.crash_host(victim.host)
        assert not victim.running
        runtime.run(until=env.now + 5)

        fresh = runtime.restart_host(victim.host)
        assert fresh is not victim
        assert fresh.cached_uids() == set()
        runtime.run(until=env.now + 30)
        # The restarted reservoir re-acquires the replicate-to-all datum.
        assert fresh.has_content(data.uid)

    def test_crash_aborts_inflight_download_without_crashing_the_sim(self, env, drive):
        topo, runtime = build(env, n_workers=2)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("huge", 500)

        def publish():
            data = yield from master.bitdew.create_data("huge", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(
                data, Attribute(name="all", replica=-1, protocol="ftp"))
            return data

        data = drive(env, publish())
        workers = runtime.attach_all()
        runtime.run(until=3)   # downloads are now in flight
        runtime.crash_host(workers[0].host)
        runtime.run(until=60)  # must not raise
        assert workers[1].has_content(data.uid)
        assert not workers[0].host.online

    def test_detach_forgets_heartbeats(self, env):
        topo, runtime = build(env, n_workers=1)
        agent = runtime.attach(topo.worker_hosts[0])
        runtime.run(until=5)
        detector = runtime.container.failure_detector
        assert detector.is_alive(agent.host.name)
        runtime.detach(agent.host)
        assert agent.host.name not in detector.known_hosts()


class TestDataIntegrityFaults:
    def test_corrupted_repository_copy_fails_transfer(self, env, drive):
        topo, runtime = build(env, n_workers=1)
        master = runtime.attach(topo.service_host, auto_sync=False)
        worker = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        content = FileContent.from_seed("blob", 4)

        def publish():
            data = yield from master.bitdew.create_data("blob", content=content)
            yield from master.bitdew.put(data, content)
            return data

        data = drive(env, publish())
        # Corrupt the repository copy behind BitDew's back.
        repository = runtime.data_repository
        repository.filesystem.write(repository.path_for(data), content.corrupted())

        from repro.core.exceptions import TransferAbortedError
        process = env.process(worker.fetch(data, protocol="http"))
        with pytest.raises(TransferAbortedError):
            env.run(until=process)
        assert not worker.has_content(data.uid)
