"""Unit tests for the federation layer: policy gateways, WAN links,
domain-qualified RPC labels, and the visibility attribute."""

from __future__ import annotations

import pytest

from repro.core.attributes import (Attribute, AttributeError_, VISIBILITIES,
                                   parse_attribute)
from repro.federation.deployment import DomainSpec, Federation
from repro.federation.policy import TrustPolicy
from repro.net.rpc import RpcEndpoint, RpcError
from repro.services.autoscaler import HotspotMonitor
from repro.storage.filesystem import FileContent


def _two_domains(alpha_trust=("open", ()), beta_trust=("open", ())):
    federation = Federation(
        [DomainSpec("alpha", n_workers=0, trust=alpha_trust[0],
                    trust_peers=alpha_trust[1], seed=1),
         DomainSpec("beta", n_workers=0, trust=beta_trust[0],
                    trust_peers=beta_trust[1], seed=2)],
        wan_latency_s=0.01, wan_bandwidth_mbps=50.0)
    federation.peer("alpha", "beta")
    return federation


def _publish(domain, name, visibility, size_mb=0.1, replica=2):
    content = FileContent.from_seed(name, size_mb)
    return domain.publish(content, Attribute(
        name=name, replica=replica, protocol="http", visibility=visibility))


# ---------------------------------------------------------------------------
# visibility attribute
# ---------------------------------------------------------------------------

def test_visibility_attribute_validated_and_parsed():
    assert Attribute(name="a").visibility == "public"
    for visibility in VISIBILITIES:
        assert Attribute(name="a",
                         visibility=visibility).visibility == visibility
    with pytest.raises(AttributeError_):
        Attribute(name="a", visibility="secret")
    assert parse_attribute(
        "attr a = { visibility = private }").visibility == "private"
    assert parse_attribute(
        "attr a = { vis = UNLISTED }").visibility == "unlisted"
    # Default visibility keeps describe() byte-identical to pre-federation.
    assert "visibility" not in Attribute(name="a").describe()
    assert "visibility=private" in Attribute(
        name="a", visibility="private").describe()


# ---------------------------------------------------------------------------
# domain-qualified RPC labels (the HotspotMonitor aliasing fix)
# ---------------------------------------------------------------------------

def test_endpoint_labels_do_not_alias_across_domains():
    class Impl:
        pass

    class Host:
        name = "h"

    impl, host = Impl(), Host()
    plain = RpcEndpoint(impl, host=host, name="DataCatalog", shard=1)
    alpha = RpcEndpoint(impl, host=host, name="DataCatalog", shard=1,
                        domain="alpha")
    beta = RpcEndpoint(impl, host=host, name="DataCatalog", shard=1,
                       domain="beta")
    # Historical single-domain labels are unchanged...
    assert plain.label() == "DataCatalog[1]"
    # ...and two domains' shard-1 catalogs no longer collapse to one label.
    assert alpha.label() == "DataCatalog[alpha/1]"
    assert beta.label() == "DataCatalog[beta/1]"
    assert len({plain.label(), alpha.label(), beta.label()}) == 3


def test_hotspot_monitor_separates_domains():
    class Channel:
        def __init__(self, calls, latency):
            self.calls_by_label = calls
            self.latency_by_label = latency

    monitor = HotspotMonitor([
        Channel({"DataCatalog[alpha/0]": 5}, {"DataCatalog[alpha/0]": 0.5}),
        Channel({"DataCatalog[beta/0]": 2}, {"DataCatalog[beta/0]": 2.0}),
    ])
    delta = monitor.delta()
    assert set(delta) == {"DataCatalog[alpha/0]", "DataCatalog[beta/0]"}
    assert monitor.hottest(delta) == "DataCatalog[beta/0]"


def test_runtime_endpoints_carry_their_domain():
    # Classic (single-container) domains qualify their service labels...
    federation = _two_domains()
    labels = {}
    for name in ("alpha", "beta"):
        router = federation.domain(name).runtime.router
        labels[name] = {service: endpoint.label()
                        for service, endpoint in router.endpoints.items()}
        assert all(f"[{name}]" in label
                   for label in labels[name].values()), labels[name]
    assert not set(labels["alpha"].values()) & set(labels["beta"].values())

    # ...and so do sharded fabric deployments.
    sharded = Federation(
        [DomainSpec("alpha", n_workers=0, shards=2, service_hosts=2,
                    seed=1),
         DomainSpec("beta", n_workers=0, shards=2, service_hosts=2,
                    seed=2)],
        wan_latency_s=0.01, wan_bandwidth_mbps=50.0)
    fabric_labels = {}
    for name in ("alpha", "beta"):
        fabric = sharded.domain(name).runtime.fabric
        fabric_labels[name] = {
            endpoint.label()
            for shard in range(fabric.shards)
            for endpoint in fabric.shard_endpoints("dc", shard)}
        assert all(f"[{name}/" in label
                   for label in fabric_labels[name]), fabric_labels[name]
    assert not fabric_labels["alpha"] & fabric_labels["beta"]


# ---------------------------------------------------------------------------
# gateway policy enforcement (always on the serving side)
# ---------------------------------------------------------------------------

def test_search_and_fetch_enforced_at_the_serving_gateway():
    federation = _two_domains(alpha_trust=("allowlist", ()))
    alpha = federation.domain("alpha")
    datum = _publish(alpha, "pub", "public")
    # beta is not on alpha's allowlist: the serving gateway denies, no
    # matter what the caller sends.
    assert alpha.gateway.search("beta") == []
    assert alpha.gateway.fetch("beta", datum.uid) is None
    assert alpha.gateway.stats()["searches_denied"] == 1
    assert alpha.gateway.stats()["fetches_denied"] == 1
    # The home domain always sees its own data.
    assert [row["uid"] for row in alpha.gateway.search("alpha")] == [
        datum.uid]


def test_fetch_visibility_matrix():
    federation = _two_domains()
    alpha = federation.domain("alpha")
    public = _publish(alpha, "pub", "public")
    unlisted = _publish(alpha, "unl", "unlisted")
    private = _publish(alpha, "prv", "private")
    assert alpha.gateway.fetch("beta", public.uid) is not None
    assert alpha.gateway.fetch("beta", unlisted.uid) is not None
    assert alpha.gateway.fetch("beta", private.uid) is None
    # Search lists only public.
    assert [row["uid"] for row in alpha.gateway.search("beta")] == [
        public.uid]


def test_offer_rejects_transitive_export():
    federation = _two_domains()
    beta = federation.domain("beta")
    descriptor = {"uid": "x", "name": "x", "size_mb": 0.1,
                  "visibility": "public", "home": "alpha"}
    # gamma claims to push alpha's datum: only the home domain may export.
    assert beta.gateway.offer("gamma", descriptor) == "deny"
    assert beta.gateway.offer("alpha", descriptor) == "accept"


def test_import_is_idempotent():
    federation = _two_domains()
    alpha, beta = federation.domain("alpha"), federation.domain("beta")
    datum = _publish(alpha, "pub", "public")
    descriptor = alpha.descriptor_of(datum.uid)
    attribute = alpha.attribute_of(datum.uid)
    content = alpha.content_of(datum.uid)
    assert beta.gateway.import_datum("alpha", descriptor, attribute,
                                     content) == "accepted"
    assert beta.gateway.import_datum("alpha", descriptor, attribute,
                                     content) == "have"
    copies = sum(1 for row in beta.catalog.all_data_now()
                 if row.uid == datum.uid)
    assert copies == 1
    assert beta.gateway.imports_accepted == 1
    assert beta.gateway.imports_duplicate == 1


def test_federated_search_merges_and_reports_unreachable():
    federation = _two_domains()
    alpha, beta = federation.domain("alpha"), federation.domain("beta")
    mine = _publish(alpha, "mine", "public")
    hidden = _publish(alpha, "hidden", "private")
    theirs = _publish(beta, "theirs", "public")
    env = federation.env

    rows, unreachable = env.run(
        env.process(alpha.gateway.federated_search()))
    assert unreachable == []
    # Home view includes alpha's private datum; the peer contributes its
    # public one.
    assert {row["uid"] for row in rows} == {mine.uid, hidden.uid,
                                            theirs.uid}

    federation.partition("alpha", "beta")
    rows, unreachable = env.run(
        env.process(alpha.gateway.federated_search()))
    assert unreachable == ["beta"]
    assert {row["uid"] for row in rows} == {mine.uid, hidden.uid}


def test_wan_link_partition_fails_calls_and_heals():
    federation = _two_domains()
    alpha = federation.domain("alpha")
    beta = federation.domain("beta")
    datum = _publish(beta, "remote", "public")
    env = federation.env
    link = federation.link("alpha", "beta")
    assert link.per_kb_s == pytest.approx(1.0 / (50.0 * 1024.0))

    federation.partition("alpha", "beta")
    with pytest.raises(RpcError):
        env.run(env.process(
            alpha.gateway.fetch_remote("beta", datum.uid, size_mb=0.1)))
    assert alpha.gateway.wan_failures == 1

    federation.heal("alpha", "beta")
    reply = env.run(env.process(
        alpha.gateway.fetch_remote("beta", datum.uid, size_mb=0.1)))
    assert reply is not None
    assert reply["descriptor"]["uid"] == datum.uid
    assert link.partitions == 1
    assert [event[0] for event in link.events] == ["sever", "heal"]


def test_trust_policy_validation():
    assert TrustPolicy.open_().admits("anyone")
    allow = TrustPolicy.allowlist(["beta"])
    assert allow.admits("beta") and not allow.admits("gamma")
    with pytest.raises(ValueError):
        TrustPolicy(kind="blocklist")
