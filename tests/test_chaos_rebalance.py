"""Chaos regression: service-host crashes mid-migration, in every phase.

Each test runs a live shard split or merge under real client traffic and
kills a service host the instant a chosen protocol phase begins — the
worst possible moments for the migration: before the plan snapshot,
mid-copy, right at the cutover seal, during the source drops.  The
coordinator's RPCs fail over (export/import/drop are idempotent, so even a
lost response is retried safely); client traffic fails over under the
at-most-once policy.  Afterwards the :class:`tests.chaos.ChaosHarness`
audits the global invariants raw: every completed request's effect exists
exactly once across ALL shards, every scheduler uid is managed by exactly
one shard, and no ledger record was left in flight.
"""

from __future__ import annotations

import pytest

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment
from repro.net.rpc import RpcError
from repro.net.topology import cluster_topology
from repro.services.rebalance import RebalanceCoordinator
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent

from tests.chaos import ChaosHarness, RequestLedger

_PHASES = ("prepare", "copy", "cutover", "drain")


def _make_data(i):
    content = FileContent.from_seed(f"chaos-{i:04d}", 0.002)
    return Data.from_content(content), content


def _chaos_migration(kind: str, crash_phase: str, n_data: int = 36,
                     n_workers: int = 6, traffic_for_s: float = 14.0):
    """One live migration with a crash at *crash_phase*; returns the pieces."""
    env = Environment()
    topo = cluster_topology(env, n_workers=n_workers, n_service_hosts=3,
                            server_link_mbps=1000.0, node_link_mbps=1000.0)
    runtime = BitDewEnvironment(
        topo, shards=2, service_hosts=3, service_replicas=2,
        sync_period_s=3600.0, heartbeat_period_s=1.0)
    fabric = runtime.fabric
    scheduler = runtime.data_scheduler
    catalog = runtime.data_catalog
    repository = runtime.container.data_repository

    attribute = Attribute(name="chaos", replica=1, protocol="http")
    datas = []
    for i in range(n_data):
        data, content = _make_data(i)
        catalog.register_data_now(data)
        locator = repository.store_now(data, content)
        catalog.add_locator_now(locator)
        scheduler.schedule(data, attribute)
        datas.append(data)
    agents = runtime.attach_all(auto_sync=False)
    done = runtime.kick_sync()
    env.run(until=done)

    ledger = RequestLedger()
    harness = ChaosHarness(runtime, ledger)
    # The crashed host backs shard replicas but is not the DR/DT primary,
    # so bulk transfers stay up while the service layer fails over.
    victim = fabric.hosts[1]
    coordinator = RebalanceCoordinator(
        fabric, runtime.router,
        on_phase=harness.crash_on_phase(crash_phase, victim,
                                        recover_after_s=8.0))

    t_start = env.now

    def client_loop(agent, index):
        count = 0
        while env.now - t_start < traffic_for_s:
            count += 1
            key = f"req-{agent.host.name}-{count:04d}"
            record = ledger.begin("publish", key, agent.host.name)
            try:
                yield from agent.invoke("dc", "publish_pair", key,
                                        agent.host.name)
                ledger.complete(record)
            except RpcError:
                ledger.fail(record)
            data = datas[(count * n_workers + index) % len(datas)]
            record = ledger.begin("pin", data.uid, agent.host.name)
            try:
                yield from agent.invoke("ds", "pin", data,
                                        agent.host.name, attribute)
                ledger.complete(record)
            except RpcError:
                ledger.fail(record)
            yield env.timeout(0.25)

    outcome = {}

    def transition():
        yield env.timeout(1.0)
        if kind == "split":
            stats = yield from coordinator.split()
        else:
            stats = yield from coordinator.merge()
        outcome["stats"] = stats

    for index, agent in enumerate(agents):
        env.process(client_loop(agent, index))
    env.process(transition())
    env.run(until=env.timeout(traffic_for_s + 10.0))
    return env, runtime, harness, outcome, datas, agents


class TestCrashEveryPhase:
    @pytest.mark.parametrize("phase", _PHASES)
    def test_split_survives_crash_in_phase(self, phase):
        env, runtime, harness, outcome, datas, agents = _chaos_migration(
            "split", phase)
        stats = outcome.get("stats")
        assert stats is not None, f"split never completed (crash in {phase})"
        assert runtime.fabric.shards == 3
        assert [name for name, _at in harness.phases] == list(_PHASES)
        assert len(harness.crashes) == 1
        harness.assert_ok()

    @pytest.mark.parametrize("phase", ("copy", "cutover"))
    def test_merge_survives_crash_in_phase(self, phase):
        env, runtime, harness, outcome, datas, agents = _chaos_migration(
            "merge", phase)
        stats = outcome.get("stats")
        assert stats is not None, f"merge never completed (crash in {phase})"
        assert runtime.fabric.shards == 1
        assert len(runtime.fabric.catalog_shards) == 1
        assert len(harness.crashes) == 1
        harness.assert_ok()

    def test_crash_free_migration_is_quiet(self):
        """Control: without injected faults the ledger shows zero failures
        and the protocol trail is exactly the four phases."""
        env, runtime, harness, outcome, datas, agents = _chaos_migration(
            "split", "no-crash")
        assert outcome.get("stats") is not None
        assert harness.crashes == []
        assert harness.ledger.failed == []
        harness.assert_ok()


class TestLedgerSemantics:
    def test_ledger_partitions_by_status(self):
        ledger = RequestLedger()
        a = ledger.begin("publish", "k1", "v")
        b = ledger.begin("publish", "k2", "v")
        c = ledger.begin("pin", "u1", "h")
        ledger.complete(a)
        ledger.fail(b)
        assert [r["rid"] for r in ledger.completed] == [0]
        assert [r["rid"] for r in ledger.failed] == [1]
        assert [r["rid"] for r in ledger.pending] == [2]
