"""The numpy-vectorized max-min allocator against its scalar references.

:class:`VectorAllocator` replicates the dense reference allocator's exact
IEEE operation sequence (same constraint scan order, same division
operands, same subtraction order), so its rates must be **bit-identical**
to the dense allocator's on any workload.  Against the incremental
allocator the contract is agreement within 1e-9 — the incremental path
may fix bottlenecks in a different order and accumulate an ULP of drift
on adversarial constraint graphs.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.allocation import (
    DenseAllocator,
    IncrementalAllocator,
    VectorAllocator,
    make_allocator,
)
from repro.net.flows import Network
from repro.net.host import Host
from repro.sim.kernel import Environment

np = pytest.importorskip("numpy")

common_settings = settings(max_examples=40, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])

host_spec_strategy = st.lists(
    st.tuples(st.floats(min_value=1.0, max_value=500.0),
              st.floats(min_value=1.0, max_value=500.0)),
    min_size=2, max_size=6)

flow_op_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=2.0),          # delay before the op
        st.sampled_from(["start", "start", "start", "abort", "fail"]),
        st.integers(min_value=0, max_value=5),            # src / victim pick
        st.integers(min_value=0, max_value=5),            # dst pick
        st.floats(min_value=0.5, max_value=50.0),         # size_mb
    ),
    min_size=1, max_size=14)


def _replay_schedule(allocator, coalesce, host_specs, ops, probe_times):
    """Run one random arrival/departure/failure schedule on one allocator."""
    env = Environment()
    network = Network(env, default_latency_s=0.001,
                      allocator=allocator, coalesce=coalesce)
    hosts = [network.add_host(Host(f"h{i}", uplink_mbps=up, downlink_mbps=down))
             for i, (up, down) in enumerate(host_specs)]
    flows = []

    def driver():
        for delay, kind, a, b, size in ops:
            yield env.timeout(delay)
            if kind == "start":
                src = hosts[a % len(hosts)]
                dst = hosts[b % len(hosts)]
                if src is not dst and src.online and dst.online:
                    flows.append(network.transfer(src, dst, size))
            elif kind == "abort":
                if flows:
                    network.abort(flows[a % len(flows)])
            else:  # fail — never kill host 0 so some flows can still run
                victim = hosts[1 + a % (len(hosts) - 1)]
                victim.fail()

    env.process(driver())
    rate_probes = []
    for t in probe_times:
        env.run(until=t)
        rate_probes.append(tuple(flow.rate_mbps for flow in flows))
    env.run()
    outcome = [
        (flow.done.ok if flow.done.triggered else None,
         flow.end_time, flow.transferred_mb)
        for flow in flows
    ]
    stats = (network.completed_flows, network.failed_flows,
             network.total_mb_delivered)
    return outcome, rate_probes, stats


PROBES = [0.5, 1.5, 3.0, 6.0]


@common_settings
@given(host_specs=host_spec_strategy, ops=flow_op_strategy)
def test_vector_matches_dense_bit_exactly(host_specs, ops):
    """Same IEEE op sequence ⇒ bit-identical rates, times and volumes."""
    dense = _replay_schedule("dense", False, host_specs, ops, PROBES)
    vector = _replay_schedule("vector", False, host_specs, ops, PROBES)
    assert vector == dense


@common_settings
@given(host_specs=host_spec_strategy, ops=flow_op_strategy)
def test_vector_matches_incremental_within_1e9(host_specs, ops):
    incremental = _replay_schedule("incremental", True, host_specs, ops,
                                   PROBES)
    vector = _replay_schedule("vector", True, host_specs, ops, PROBES)
    # Outcomes: same completion structure, times within tolerance.
    assert len(vector[0]) == len(incremental[0])
    for (v_ok, v_end, v_mb), (i_ok, i_end, i_mb) in zip(vector[0],
                                                        incremental[0]):
        assert v_ok == i_ok
        if v_end is None or i_end is None:
            assert v_end == i_end
        else:
            assert math.isclose(v_end, i_end, rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(v_mb, i_mb, rel_tol=1e-9, abs_tol=1e-9)
    # Rates at every probe time.
    for v_rates, i_rates in zip(vector[1], incremental[1]):
        assert len(v_rates) == len(i_rates)
        for v, i in zip(v_rates, i_rates):
            assert math.isclose(v, i, rel_tol=1e-9, abs_tol=1e-9)
    # Network-level statistics.
    assert vector[2][:2] == incremental[2][:2]
    assert math.isclose(vector[2][2], incremental[2][2],
                        rel_tol=1e-9, abs_tol=1e-9)


def test_vector_exact_on_single_bottleneck_fanout():
    """The scale-grid shape (one server uplink, N worker downlinks) is
    exactly identical across all three allocators."""
    results = {}
    for name in ("dense", "incremental", "vector"):
        env = Environment()
        network = Network(env, default_latency_s=0.0, allocator=name)
        server = network.add_host(Host("server", uplink_mbps=1000,
                                       downlink_mbps=1000))
        flows = []
        for i in range(40):
            worker = network.add_host(
                Host(f"w{i}", uplink_mbps=30 + i, downlink_mbps=30 + i))
            flows.append(network.transfer(server, worker, 50.0))
        env.run(until=0.001)
        rates = tuple(f.rate_mbps for f in network.active_flows)
        env.run()
        results[name] = (rates, tuple(f.end_time for f in flows),
                         network.total_mb_delivered)
    assert results["vector"] == results["dense"]
    assert results["vector"] == results["incremental"]


def test_vector_rates_are_feasible_and_work_conserving():
    env = Environment()
    network = Network(env, default_latency_s=0.0, allocator="vector")
    server = network.add_host(Host("server", uplink_mbps=100,
                                   downlink_mbps=100))
    downs = [10.0, 20.0, 90.0]
    flows = []
    for i, down in enumerate(downs):
        worker = network.add_host(Host(f"w{i}", uplink_mbps=down,
                                       downlink_mbps=down))
        flows.append(network.transfer(server, worker, 1000.0))
    env.run(until=0.001)
    rates = [f.rate_mbps for f in network.active_flows]
    assert sum(rates) <= 100 * (1 + 1e-9)
    for rate, down in zip(rates, downs):
        assert rate <= down * (1 + 1e-9)
    # The uplink is the bottleneck: max-min gives 10, 20, 70.
    assert rates == pytest.approx([10.0, 20.0, 70.0])


def test_make_allocator_resolves_names():
    assert isinstance(make_allocator("dense"), DenseAllocator)
    assert isinstance(make_allocator("incremental"), IncrementalAllocator)
    assert isinstance(make_allocator("vector"), VectorAllocator)
    with pytest.raises(ValueError):
        make_allocator("waterfall")
