"""Tests for the declarative experiment subsystem and the ``repro`` CLI."""

import inspect
import json

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import (
    ScenarioRegistry,
    ScenarioSpec,
    UnknownScenarioError,
    default_registry,
    expand_grid,
    run_scenario,
    run_spec,
    run_sweep,
)
from repro.experiments.runner import json_safe


# ---------------------------------------------------------------------------
# ScenarioSpec round-trip
# ---------------------------------------------------------------------------

class TestScenarioSpec:
    def test_dict_round_trip(self):
        spec = ScenarioSpec("fig4", {"replica": 3, "seed": 7})
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.seed == 7

    def test_json_round_trip(self):
        spec = ScenarioSpec("distribution",
                            {"protocol": "ftp", "size_mb": 2.5, "seed": 0})
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec

    def test_to_dict_sorts_params(self):
        spec = ScenarioSpec("x", {"b": 1, "a": 2})
        assert list(spec.to_dict()["params"]) == ["a", "b"]

    def test_with_params_merges(self):
        spec = ScenarioSpec("x", {"a": 1})
        merged = spec.with_params(b=2, a=3)
        assert merged.params == {"a": 3, "b": 2}
        assert spec.params == {"a": 1}          # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec("")
        with pytest.raises(TypeError):
            ScenarioSpec("x", params=[1, 2])
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"params": {}})

    def test_seed_absent_is_none(self):
        assert ScenarioSpec("x", {}).seed is None


class TestExpandGrid:
    def test_cartesian_product_order(self):
        combos = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert combos == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            expand_grid({"a": []})

    def test_scalar_axis_rejected(self):
        with pytest.raises(TypeError):
            expand_grid({"a": 5})
        with pytest.raises(TypeError):
            expand_grid({"a": "abc"})


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _toy_runner(x: int = 1, seed: int = 0):
    """Toy scenario."""
    return {"x": x, "seed": seed}


class TestRegistry:
    def test_register_and_get(self):
        registry = ScenarioRegistry()
        registry.register("toy", _toy_runner, title="toy")
        definition = registry.get("TOY")           # case-insensitive
        assert definition.name == "toy"
        assert definition.parameters() == {"x": 1, "seed": 0}
        assert definition.seeded

    def test_duplicate_rejected_unless_replace(self):
        registry = ScenarioRegistry()
        registry.register("toy", _toy_runner, title="toy")
        with pytest.raises(ValueError):
            registry.register("toy", _toy_runner, title="again")
        registry.register("toy", _toy_runner, title="again", replace=True)
        assert registry.get("toy").title == "again"

    def test_unknown_scenario_error_suggests(self):
        registry = default_registry()
        with pytest.raises(UnknownScenarioError) as err:
            registry.get("fig44")
        message = err.value.args[0]
        assert "fig4" in message and "known scenarios" in message

    def test_spec_rejects_unknown_param(self):
        definition = default_registry().get("fig4")
        with pytest.raises(ValueError, match="no parameter"):
            definition.spec(bogus=1)

    def test_spec_requires_params_without_default(self):
        definition = default_registry().get("distribution")
        with pytest.raises(ValueError, match="requires parameters"):
            definition.spec()
        spec = definition.spec(protocol="ftp", size_mb=1.0, n_nodes=2)
        assert spec.params["protocol"] == "ftp"
        assert spec.params["sync_period_s"] == 1.0      # default filled in

    def test_var_kwargs_scenarios_accept_extra(self):
        definition = default_registry().get("fig3a")
        assert definition.accepts_extra_params()
        spec = definition.spec(monitor_period_s=0.5)     # forwarded kwarg
        assert spec.params["monitor_period_s"] == 0.5


class TestCatalog:
    def test_catalog_has_paper_and_new_scenarios(self):
        registry = default_registry()
        names = registry.names()
        assert len(names) >= 9
        for name in ("table1", "table2", "table3", "fig3a", "fig3bc",
                     "fig4", "fig5", "fig6", "sync-storm", "scale-grid"):
            assert name in names
        for name in ("flash-crowd", "fig4-weibull", "catalog-load",
                     "mapreduce-churn"):
            assert name in names

    def test_every_definition_documents_itself(self):
        for definition in default_registry().definitions():
            assert definition.title
            assert definition.paper_ref
            assert definition.module
            assert definition.summary

    def test_experiments_doc_covers_catalog(self):
        import os
        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "docs", "EXPERIMENTS.md")
        doc = open(path).read()
        for definition in default_registry().definitions():
            assert f"`{definition.name}`" in doc, (
                f"docs/EXPERIMENTS.md misses scenario {definition.name!r}")
            assert f"python -m repro run {definition.name}" in doc, (
                f"docs/EXPERIMENTS.md misses a CLI command for "
                f"{definition.name!r}")

    def test_bench_entry_points_dispatch_through_registry(self):
        from repro.bench.blast import run_fig5
        from repro.bench.fault import run_fig4
        from repro.bench.micro import run_table3
        from repro.bench.scale import run_scale_grid
        from repro.bench.transfer import run_fig3a
        for func, name in ((run_fig4, "fig4"), (run_fig3a, "fig3a"),
                           (run_fig5, "fig5"), (run_table3, "table3"),
                           (run_scale_grid, "scale-grid")):
            assert func.scenario_name == name
            assert default_registry().get(name).runner is func.scenario_impl

    def test_entry_point_keeps_signature_and_doc(self):
        from repro.bench.fault import run_fig4
        params = inspect.signature(run_fig4).parameters
        assert params["replica"].default == 5
        assert "Figure 4" in run_fig4.__doc__


# ---------------------------------------------------------------------------
# Runner + determinism
# ---------------------------------------------------------------------------

class TestRunner:
    def test_run_scenario_raw_results(self):
        rows = run_scenario("table1")
        assert len(rows) == 4

    def test_run_spec_resolves_defaults(self):
        result = run_spec(ScenarioSpec("table2-cell", {"n_creations": 200}))
        assert result.spec.params["engine"] == "hsqldb"
        assert isinstance(result.results, float)

    def test_json_safe_object_fallback_is_deterministic(self):
        first, second = json_safe(object()), json_safe(object())
        assert first == second                 # no memory addresses leak
        assert "0x" not in first

    def test_json_safe_scrubs_and_converts(self):
        doc = {"keep": 1, "wall_s": 2.0,
               "nested": [{"wall_s": 3, "ok": (1, 2)}],
               "set": {2, 1}, "obj": object()}
        safe = json_safe(doc, scrub=("wall_s",))
        assert safe["keep"] == 1 and "wall_s" not in safe
        assert safe["nested"][0] == {"ok": [1, 2]}
        assert safe["set"] == [1, 2]
        assert isinstance(safe["obj"], str)
        json.dumps(safe)                                  # round-trips

    def test_volatile_keys_scrubbed_from_serialised_results(self):
        result = run_spec(ScenarioSpec("sync-storm", {
            "n_workers": 5, "rounds": 1, "size_mb": 0.5}))
        assert "wall_s" in result.results                  # raw keeps it
        doc = json.loads(result.to_json())
        assert "wall_s" not in doc["results"]

    def test_same_seed_identical_json(self):
        params = {"size_mb": 1.0, "n_initial": 3, "n_spare": 2, "replica": 3,
                  "settle_s": 30.0, "horizon_s": 90.0, "seed": 11}
        first = run_spec(ScenarioSpec("fig4", dict(params)))
        second = run_spec(ScenarioSpec("fig4", dict(params)))
        assert first.to_json() == second.to_json()

    def test_run_spec_isolates_process_state(self):
        """The Nth run in a process equals a fresh-process run.

        AUIDs come from a process-wide counter; run_spec resets it, so a
        scenario whose results depend on uid hash placement (the elastic
        ring moves whichever keys change owner) is byte-identical whether
        it runs first, after other scenarios in a serial sweep, or in a
        pool worker.  The burned uids below simulate a prior run's drift.
        """
        from repro.storage.persistence import new_auid
        params = {"n_hosts": 3, "n_data": 8, "run_for_s": 4.0,
                  "split_at": 1.0, "merge_at": 2.5}
        first = run_spec(ScenarioSpec("fabric-rebalance", dict(params)))
        for _ in range(997):
            new_auid("drift")
        second = run_spec(ScenarioSpec("fabric-rebalance", dict(params)))
        assert first.to_json() == second.to_json()

    def test_different_seed_different_results(self):
        base = {"n_initial": 3, "n_spare": 2, "replica": 3, "size_mb": 1.0,
                "settle_s": 30.0, "horizon_s": 90.0}
        first = run_spec(ScenarioSpec("fig4", dict(base, seed=1)))
        second = run_spec(ScenarioSpec("fig4", dict(base, seed=2)))
        assert first.to_json() != second.to_json()

    def test_run_sweep_grid_order_and_overrides(self):
        runs = run_sweep("ftp-alone", {"n_nodes": [2, 4]},
                         base_params={"size_mb": 1.0})
        assert [run.spec.params["n_nodes"] for run in runs] == [2, 4]
        assert all(run.spec.params["size_mb"] == 1.0 for run in runs)
        assert runs[1].results["completion_s"] > runs[0].results["completion_s"]


# ---------------------------------------------------------------------------
# New scenarios (smoke, small sizes)
# ---------------------------------------------------------------------------

class TestExtraScenarios:
    def test_flash_crowd_completes(self):
        result = run_scenario("flash-crowd", size_mb=2.0, n_initial=2,
                              n_crowd=4, protocol="ftp")
        assert result["crowd_completed"] == 4
        assert result["crowd_completion_s"] > 0
        assert all(row["latency_s"] > 0 for row in result["rows"])

    def test_fig4_weibull_tracks_replicas(self):
        result = run_scenario("fig4-weibull", replica=3, n_workers=6,
                              settle_s=30.0, horizon_s=120.0)
        assert result["samples"]
        assert 0 <= result["min_live_replicas"] <= 3
        assert result["crashes"] > 0
        assert 0.0 <= result["fraction_at_target"] <= 1.0

    def test_catalog_load_ddc_slower(self):
        result = run_scenario("catalog-load", n_nodes=6, pairs_per_node=20,
                              searches_per_node=10)
        assert result["ddc_publishes"] == 6 * 20
        assert result["ddc_searches"] == 6 * 10
        assert result["slowdown_ratio"] > 1.0

    def test_mapreduce_churn_degrades_gracefully(self):
        result = run_scenario("mapreduce-churn")
        assert result["map_tasks"] < result["n_map_slices"]
        assert 0.0 < result["output_fraction"] < 1.0
        assert result["reduce_tasks"] == result["n_reducers"]

    def test_mapreduce_without_churn_is_lossless(self):
        result = run_scenario("mapreduce-churn", crash_mappers=0)
        assert result["output_fraction"] == 1.0
        assert result["map_tasks"] == result["n_map_slices"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCLI:
    def test_list_shows_catalog(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4", "flash-crowd", "mapreduce-churn"):
            assert name in out

    def test_list_group_filter(self, capsys):
        assert cli_main(["list", "--group", "extra"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out and "fig3a" not in out

    def test_describe_shows_parameters(self, capsys):
        assert cli_main(["describe", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "replica" in out and "Figure 4" in out
        assert "python -m repro run fig4" in out

    def test_unknown_scenario_exit_code(self, capsys):
        assert cli_main(["describe", "nope"]) == 2
        assert "known scenarios" in capsys.readouterr().err

    def test_run_parses_set_values(self, tmp_path, capsys):
        out_file = tmp_path / "r.json"
        code = cli_main(["run", "ftp-alone", "--set", "size_mb=2",
                         "--set", "n_nodes=3", "--out", str(out_file)])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["scenario"] == "ftp-alone"
        assert doc["spec"]["params"]["size_mb"] == 2        # JSON-parsed int
        assert doc["spec"]["params"]["n_nodes"] == 3
        assert doc["results"]["completion_s"] > 0

    def test_run_bad_param_exit_code(self, capsys):
        assert cli_main(["run", "fig4", "--set", "bogus=1", "--quiet"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_run_seed_override_and_determinism(self, tmp_path, capsys):
        args = ["run", "fig4", "--seed", "11", "--set", "n_initial=3",
                "--set", "n_spare=2", "--set", "replica=3",
                "--set", "settle_s=30.0", "--set", "horizon_s=90.0",
                "--quiet"]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert cli_main(args + ["--out", str(first)]) == 0
        assert cli_main(args + ["--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert json.loads(first.read_text())["spec"]["params"]["seed"] == 11

    def test_profile_out_writes_phase_split(self, tmp_path, capsys):
        profile_file = tmp_path / "prof.json"
        code = cli_main(["run", "ftp-alone", "--set", "size_mb=1",
                         "--set", "n_nodes=2", "--quiet",
                         "--profile-out", str(profile_file),
                         "--profile-sort", "tottime"])
        assert code == 0
        report = json.loads(profile_file.read_text())
        assert report["scenario"] == "ftp-alone"
        assert report["sort"] == "tottime"
        phases = report["phases"]
        assert set(phases) == {"placement", "allocation", "kernel_dispatch",
                               "other"}
        # tottime is disjoint per function, so the shares partition the
        # profiled total; a transfer scenario must spend kernel time.
        assert sum(p["share"] for p in phases.values()) == pytest.approx(
            1.0, abs=0.01)
        assert phases["kernel_dispatch"]["calls"] > 0
        rows = report["top"]
        assert rows and all({"function", "file", "phase", "tottime_s",
                             "cumtime_s"} <= set(row) for row in rows)
        # The top list honours the requested ordering.
        tottimes = [row["tottime_s"] for row in rows]
        assert tottimes == sorted(tottimes, reverse=True)
        # The stderr table reports the same ordering key.
        assert "tottime" in capsys.readouterr().err

    def test_profile_out_rejected_with_cache(self, tmp_path, capsys):
        code = cli_main(["run", "ftp-alone", "--cache",
                         "--cache-dir", str(tmp_path / "cache"),
                         "--profile-out", str(tmp_path / "p.json"),
                         "--quiet"])
        assert code == 2
        assert "--profile" in capsys.readouterr().err

    def test_sweep_writes_grid_and_runs(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        code = cli_main(["sweep", "ftp-alone", "--grid", "n_nodes=2,4",
                         "--set", "size_mb=1.0", "--out", str(out_file),
                         "--quiet"])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["scenario"] == "ftp-alone"
        assert doc["grid"] == {"n_nodes": [2, 4]}
        assert len(doc["runs"]) == 2
        assert [run["spec"]["params"]["n_nodes"] for run in doc["runs"]] == [2, 4]

    def test_malformed_set_value_is_a_clean_error(self, capsys):
        assert cli_main(["run", "fig4", "--set", "noequals", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "name=value" in err and "Traceback" not in err

    def test_grid_axis_parsing(self):
        from repro.__main__ import _parse_grid_axis
        assert _parse_grid_axis("n=2,4") == ("n", [2, 4])
        assert _parse_grid_axis("n=[2,4]") == ("n", [2, 4])
        assert _parse_grid_axis("p=ftp,bittorrent") == ("p", ["ftp", "bittorrent"])
        assert _parse_grid_axis('p="x,y"') == ("p", ["x,y"])   # quoted: whole
        assert _parse_grid_axis("n=5") == ("n", [5])
        with pytest.raises(ValueError):
            _parse_grid_axis("noequals")

    def test_duplicate_grid_axis_rejected(self, capsys):
        code = cli_main(["sweep", "ftp-alone", "--grid", "n_nodes=2",
                         "--grid", "n_nodes=4", "--quiet"])
        assert code == 2
        assert "duplicate --grid axis" in capsys.readouterr().err

    def test_sweep_json_list_axis(self, tmp_path):
        out_file = tmp_path / "sweep.json"
        code = cli_main(["sweep", "ftp-alone", "--grid", "n_nodes=[2,4]",
                         "--set", "size_mb=1.0", "--out", str(out_file),
                         "--quiet"])
        assert code == 0
        assert len(json.loads(out_file.read_text())["runs"]) == 2
