"""Chaos regression: WAN partitions mid-replication, in every phase.

Each test runs scheduled cross-domain replication between two federated
BitDew domains and severs the WAN link the instant a chosen replicator
phase begins — before the plan snapshot (``scan``), during the admission
probes (``offer``), mid-bulk-copy (``copy``), at the export confirmation
(``commit``).  The link heals a few seconds later and the replicator's
periodic replanning must finish the job **exactly once**: the offer →
``"have"`` handshake makes imports idempotent, so a copy that landed but
whose confirmation the partition swallowed is confirmed, not re-sent.

Afterwards the :class:`tests.chaos.FederationChaosHarness` audits the
invariants raw (no gateways): every intended export is installed in the
target exactly once — zero lost, zero duplicated — and nothing
non-``public`` ever left its home domain, partition or not.
"""

from __future__ import annotations

import pytest

from repro.core.attributes import Attribute
from repro.federation.deployment import DomainSpec, Federation
from repro.federation.replication import PHASES
from repro.storage.filesystem import FileContent

from tests.chaos import FederationChaosHarness, RequestLedger


def _build_pair():
    federation = Federation(
        [DomainSpec("alpha", n_workers=0, seed=1),
         DomainSpec("beta", n_workers=0, seed=2)],
        wan_latency_s=0.05, wan_bandwidth_mbps=8.0)
    federation.peer("alpha", "beta")
    return federation


def _publish_mix(domain, n_public=8, n_unlisted=2, n_private=2,
                 size_mb=0.5, replica=2):
    published = {"public": [], "unlisted": [], "private": []}
    for visibility in ("public", "unlisted", "private"):
        count = {"public": n_public, "unlisted": n_unlisted,
                 "private": n_private}[visibility]
        for i in range(count):
            content = FileContent.from_seed(
                f"{visibility}-{i:04d}", size_mb)
            data = domain.publish(content, Attribute(
                name=f"{visibility}-{i:04d}", replica=replica,
                protocol="http", visibility=visibility))
            published[visibility].append(data)
    return published


def _drive_until_drained(federation, replicator, horizon_s=120.0,
                         step_s=0.5):
    """Advance the kernel until the export plan is empty (or horizon)."""
    env = federation.env
    proc = env.process(replicator.run())
    while env.now < horizon_s:
        env.run(until=env.now + step_s)
        link = federation.link("alpha", "beta")
        if link.up and not replicator.plan_round():
            break
    replicator.stop()
    env.run(until=env.now + step_s)  # let the final round settle
    return proc


@pytest.mark.parametrize("phase", PHASES)
def test_partition_in_every_phase_heals_exactly_once(phase):
    federation = _build_pair()
    alpha = federation.domain("alpha")
    beta = federation.domain("beta")
    published = _publish_mix(alpha)

    harness = FederationChaosHarness(federation)
    records = {data.uid: harness.ledger.begin("replicate", data.uid, "beta")
               for data in published["public"]}

    replicator = alpha.start_replicator(
        period_s=0.5,
        on_phase=harness.partition_on_phase(phase, "alpha", "beta",
                                            heal_after_s=3.0))
    _drive_until_drained(federation, replicator)

    # The partition must actually have fired in the phase under test...
    assert [f for f in harness.faults if f[0] == "sever"], (
        f"partition never fired in phase {phase}")
    assert ("sever", "alpha", "beta",
            harness.faults[0][3]) == harness.faults[0]
    assert any(name == phase for name, _ in harness.phases)
    # ...and healed.
    assert federation.link("alpha", "beta").up

    # Every intended export eventually confirmed on the home side.
    for uid, record in records.items():
        if "beta" in replicator.exported.get(uid, set()):
            harness.ledger.complete(record)
    harness.assert_ok()

    # Exactly-once on the receiving side, in numbers: one accepted import
    # per public datum, no matter how many rounds the partition forced.
    assert beta.gateway.imports_accepted == len(published["public"])
    # Pinned data never moved.
    for visibility in ("unlisted", "private"):
        for data in published[visibility]:
            assert federation.holders_of(data.uid) == ["alpha"]


def test_no_partition_control_run_is_one_round():
    federation = _build_pair()
    alpha = federation.domain("alpha")
    published = _publish_mix(alpha)

    harness = FederationChaosHarness(federation)
    records = {data.uid: harness.ledger.begin("replicate", data.uid, "beta")
               for data in published["public"]}
    replicator = alpha.start_replicator(
        period_s=0.5, on_phase=harness.observe_phases())
    drained = federation.env.run(
        federation.env.process(replicator.run_until_drained()))

    assert drained is True
    assert replicator.copies_failed == 0
    for record in records.values():
        harness.ledger.complete(record)
    harness.assert_ok()
    # The protocol trail is the canonical phase sequence, repeated.
    names = [name for name, _ in harness.phases]
    assert names[:4] == list(PHASES)


def test_partition_while_split_blocks_then_heals():
    """A federation split before replication starts exports nothing; after
    healing the same replicator converges with zero manual intervention."""
    federation = _build_pair()
    alpha = federation.domain("alpha")
    beta = federation.domain("beta")
    published = _publish_mix(alpha, n_public=4, n_unlisted=0, n_private=1)

    harness = FederationChaosHarness(federation)
    harness.partition("alpha", "beta")
    replicator = alpha.start_replicator(period_s=0.5)
    env = federation.env
    env.process(replicator.run())
    env.run(until=5.0)
    assert beta.gateway.imports_accepted == 0
    assert replicator.copies_failed > 0

    harness.heal("alpha", "beta")
    env.run(until=30.0)
    replicator.stop()
    assert beta.gateway.imports_accepted == len(published["public"])
    for data in published["public"]:
        harness.ledger.complete(
            harness.ledger.begin("replicate", data.uid, "beta"))
    harness.assert_ok()
