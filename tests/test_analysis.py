"""detlint: the determinism & architecture linter (repro.analysis).

Covers, per ISSUE 9:

* one seeded violation per rule in ``tests/detlint_fixtures/`` — each
  test asserts the exact rule id *and* line number of the seed;
* pragma handling: suppression round-trip, reason-required (LINT001),
  unused-pragma (LINT002);
* baseline round-trip: record → forgive → regressions still fail;
* the self-hosting gate: ``src/repro`` lints clean with zero
  unsuppressed findings;
* the CLI surface (exit codes, JSON format, --list-rules).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, default_config, run_checks
from repro.analysis.cli import main as lint_main
from repro.analysis.config import permissive_config
from repro.analysis.engine import default_scan_root
from repro.analysis.findings import write_baseline

FIXTURES = Path(__file__).parent / "detlint_fixtures"


def seed_line(path: Path, marker: str) -> int:
    """1-based line of the ``# SEED:<marker>`` comment in a fixture."""
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if f"SEED:{marker}" in line:
            return number
    raise AssertionError(f"no SEED:{marker} marker in {path}")


def lint_fixture(name: str, **kwargs):
    return run_checks(FIXTURES / name, config=permissive_config(), **kwargs)


# ---------------------------------------------------------------------------
# One seeded violation per DET rule
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fixture, rule", [
    ("det001_wallclock.py", "DET001"),
    ("det002_rng.py", "DET002"),
    ("det003_set_iter.py", "DET003"),
    ("det004_dict_iter.py", "DET004"),
    ("det005_identity.py", "DET005"),
])
def test_det_fixture_flags_exactly_its_seed(fixture: str, rule: str) -> None:
    report = lint_fixture(fixture)
    assert [f.rule for f in report.findings] == [rule], report.findings
    assert report.findings[0].line == seed_line(FIXTURES / fixture, rule)
    assert not report.suppressed and not report.baselined


def test_det003_sorted_wrapping_is_clean(tmp_path: Path) -> None:
    clean = tmp_path / "sorted_ok.py"
    clean.write_text(
        "hosts = {'a', 'b'}\n"
        "for name in sorted(hosts):\n"
        "    print(name)\n")
    report = run_checks(clean, config=permissive_config())
    assert report.ok, report.findings


def test_det004_only_applies_to_hot_modules(tmp_path: Path) -> None:
    cold = tmp_path / "cold.py"
    cold.write_text(
        "table = {'a': 1}\n"
        "for k, v in table.items():\n"
        "    print(k, v)\n")
    hot = run_checks(cold, config=permissive_config(hot=("",)))
    assert [f.rule for f in hot.findings] == ["DET004"]
    off = run_checks(cold, config=permissive_config(hot=()))
    assert off.ok, off.findings


# ---------------------------------------------------------------------------
# ARCH rules over a miniature package tree
# ---------------------------------------------------------------------------

def test_arch001_upward_edge_reports_the_import(tmp_path_factory) -> None:
    report = run_checks(FIXTURES / "arch_tree", config=permissive_config(),
                        rules=["ARCH001"])
    assert [f.rule for f in report.findings] == ["ARCH001"]
    finding = report.findings[0]
    assert finding.path == "sim/bad_upward.py"
    assert finding.line == seed_line(
        FIXTURES / "arch_tree/sim/bad_upward.py", "ARCH001")
    assert "sim -> services" in finding.message


def test_arch002_flags_surface_breaches_import_and_attribute() -> None:
    report = run_checks(FIXTURES / "arch_tree", config=permissive_config(),
                        rules=["ARCH002"])
    surface = FIXTURES / "arch_tree/services/bad_surface.py"
    expected = {
        ("ARCH002", seed_line(surface, "ARCH002-import")),
        ("ARCH002", seed_line(surface, "ARCH002-attr")),
    }
    got = {(f.rule, f.line) for f in report.findings
           if f.path == "services/bad_surface.py"}
    assert got == expected, report.findings


def test_arch001_exemption_forgives_a_declared_edge(tmp_path: Path) -> None:
    tree = tmp_path / "tree"
    (tree / "sim").mkdir(parents=True)
    (tree / "sim" / "edge.py").write_text("import repro.services\n")
    config = permissive_config()
    flagged = run_checks(tree, config=config, rules=["ARCH001"])
    assert not flagged.ok
    from dataclasses import replace
    forgiven = run_checks(
        tree,
        config=replace(config, layer_exemptions={
            ("sim/edge.py", "services"): "test: sanctioned edge"}),
        rules=["ARCH001"])
    assert forgiven.ok, forgiven.findings


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

def test_pragma_with_reason_suppresses() -> None:
    report = lint_fixture("pragma_ok.py")
    assert report.ok, report.findings
    assert [f.rule for f in report.suppressed] == ["DET001"]


def test_pragma_without_reason_is_malformed_and_suppresses_nothing() -> None:
    report = lint_fixture("pragma_missing_reason.py")
    rules = sorted(f.rule for f in report.findings)
    assert rules == ["DET001", "LINT001"], report.findings
    assert not report.suppressed


def test_unused_pragma_is_flagged() -> None:
    report = lint_fixture("pragma_unused.py")
    assert [f.rule for f in report.findings] == ["LINT002"], report.findings


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------

def test_baseline_roundtrip_forgives_then_catches_regressions(
        tmp_path: Path) -> None:
    first = lint_fixture("det001_wallclock.py")
    assert len(first.findings) == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, first.findings)

    baseline = Baseline.load(baseline_file)
    forgiven = lint_fixture("det001_wallclock.py", baseline=baseline)
    assert forgiven.ok
    assert [f.rule for f in forgiven.baselined] == ["DET001"]

    # A different violation is a regression: the baseline must not mask it.
    regression = lint_fixture("det002_rng.py", baseline=Baseline.load(
        baseline_file))
    assert [f.rule for f in regression.findings] == ["DET002"]


def test_baseline_survives_line_shifts(tmp_path: Path) -> None:
    original = tmp_path / "module.py"
    original.write_text("import time\n\nt = time.time()\n")
    config = permissive_config()
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file,
                   run_checks(original, config=config).findings)
    # Insert lines above the finding: same code, different line numbers.
    original.write_text("import time\n\n# padding\n# padding\n\n"
                        "t = time.time()\n")
    shifted = run_checks(original, config=config,
                         baseline=Baseline.load(baseline_file))
    assert shifted.ok, shifted.findings
    assert len(shifted.baselined) == 1


# ---------------------------------------------------------------------------
# Self-hosting: this repository lints clean
# ---------------------------------------------------------------------------

def test_self_scan_is_clean() -> None:
    report = run_checks()
    assert report.findings == [], [f.render() for f in report.findings]
    assert report.files_scanned >= 90
    # Every suppression necessarily carried a reason (LINT001 otherwise),
    # and every pragma suppressed something (LINT002 otherwise).
    assert all(f.rule.startswith(("DET", "ARCH"))
               for f in report.suppressed)


def test_default_scan_root_is_the_repro_package() -> None:
    root = default_scan_root()
    assert root.name == "repro"
    assert (root / "sim" / "kernel.py").is_file()
    assert default_config().root_package == "repro"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_exit_codes_and_json(tmp_path: Path, capsys) -> None:
    dirty = FIXTURES / "det001_wallclock.py"
    assert lint_main([str(dirty), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["findings"][0]["rule"] == "DET001"

    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean)]) == 0

    assert lint_main([str(dirty), "--rules", "NOPE999"]) == 2
    assert lint_main([str(tmp_path / "missing.py")]) == 2


def test_cli_write_and_use_baseline(tmp_path: Path, capsys) -> None:
    dirty = FIXTURES / "det001_wallclock.py"
    baseline = tmp_path / "base.json"
    assert lint_main([str(dirty), "--write-baseline", str(baseline)]) == 0
    assert baseline.is_file()
    assert lint_main([str(dirty), "--baseline", str(baseline)]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys) -> None:
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                    "ARCH001", "ARCH002"):
        assert rule_id in out
