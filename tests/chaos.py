"""Reusable fault-injection and invariant-checking harness for the fabric.

The elastic-fabric claims — "no request is lost, none is double-applied,
no key is left behind" — are global invariants over the catalog and
scheduler shards, not properties of any single call.  This module gives
the chaos tests one vocabulary for proving them:

* :class:`RequestLedger` — a linear ledger of every client request a test
  issues.  Each request is ``begin``-ed before its first RPC and either
  ``complete``-d (with what the client believes it accomplished) or
  ``fail``-ed (the client saw an error — allowed, but then the ledger does
  not demand the effect).  Verification replays the ledger against the raw
  shard state, bypassing the router: a *completed* effect must exist
  exactly once across ALL shards, whatever migrations happened since.

* :class:`ChaosHarness` — fault injection synchronised with the migration
  protocol.  ``crash_on_phase`` returns an ``on_phase`` callback for the
  :class:`~repro.services.rebalance.RebalanceCoordinator` that kills a
  chosen service host the instant a chosen phase begins (the worst
  moments: mid-copy, right at the seal, during the source drops), with an
  optional scheduled recovery.  ``verify`` audits the invariants and
  returns human-readable violations; ``assert_ok`` raises on any.

The harness is deliberately dependency-free (stdlib only) so the CI smoke
jobs and the property suite can both drive it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ChaosHarness", "RequestLedger"]


class RequestLedger:
    """A linear record of every client request issued by a test."""

    def __init__(self):
        self.records: List[Dict[str, object]] = []
        self._next_rid = 0

    def begin(self, kind: str, key: str, value: Optional[str] = None) -> dict:
        """Open a ledger record before the request's first RPC."""
        record = {"rid": self._next_rid, "kind": kind, "key": key,
                  "value": value, "status": "pending"}
        self._next_rid += 1
        self.records.append(record)
        return record

    @staticmethod
    def complete(record: dict) -> None:
        record["status"] = "completed"

    @staticmethod
    def fail(record: dict) -> None:
        record["status"] = "failed"

    def by_status(self, status: str) -> List[dict]:
        return [r for r in self.records if r["status"] == status]

    @property
    def completed(self) -> List[dict]:
        return self.by_status("completed")

    @property
    def pending(self) -> List[dict]:
        return self.by_status("pending")

    @property
    def failed(self) -> List[dict]:
        return self.by_status("failed")


class ChaosHarness:
    """Crash service hosts at migration phase boundaries; audit invariants."""

    def __init__(self, runtime, ledger: Optional[RequestLedger] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.fabric = runtime.fabric
        self.ledger = ledger if ledger is not None else RequestLedger()
        #: (phase, host name, time) per injected crash
        self.crashes: List[tuple] = []
        #: phases observed, in order (the protocol's audit trail)
        self.phases: List[tuple] = []

    # ------------------------------------------------------------------ faults
    def crash_on_phase(self, phase: str, host, recover_after_s: float = 6.0,
                       chain=None):
        """An ``on_phase`` callback crashing *host* when *phase* begins.

        The crash lands synchronously inside the coordinator's phase
        transition — before the phase's first RPC — which is the worst
        instant for it: every in-flight client call and every coordinator
        copy targeting the host must fail over.  With ``recover_after_s``
        the host comes back (its heartbeats resume and routing returns);
        pass ``None`` to leave it dead.  ``chain`` composes another
        ``on_phase`` callback (observed before the crash).
        """
        def on_phase(name, migration):
            self.phases.append((name, self.env.now))
            if chain is not None:
                chain(name, migration)
            if name == phase and host.online:
                self.crashes.append((name, host.name, self.env.now))
                self.runtime.crash_service_host(host)
                if recover_after_s is not None:
                    self.env.process(self._recover_later(host,
                                                         recover_after_s))
        return on_phase

    def observe_phases(self):
        """An ``on_phase`` callback that only records the protocol trail."""
        def on_phase(name, migration):
            self.phases.append((name, self.env.now))
        return on_phase

    def _recover_later(self, host, delay_s: float):
        yield self.env.timeout(delay_s)
        if not host.online:
            self.runtime.recover_service_host(host)

    # ------------------------------------------------------------------ audit
    def verify(self) -> List[str]:
        """Audit the ledger and the global shard invariants; return violations.

        Raw-scans every shard (no router, no RPC cost), so the audit sees
        exactly what migrations left behind:

        * a completed ``publish`` record's (key, value) exists on exactly
          one catalog shard, exactly once;
        * a completed ``pin`` record's host owns the uid on the scheduler;
        * every scheduler uid is managed by exactly one shard;
        * no ledger record is still pending (the test must resolve every
          request it began — lost-in-flight requests are the bug chaos
          testing exists to catch).
        """
        violations: List[str] = []
        fabric = self.fabric

        for record in self.ledger.completed:
            kind, key, value = record["kind"], record["key"], record["value"]
            if kind == "publish":
                holders = []
                copies = 0
                for index, shard in enumerate(fabric.catalog_shards):
                    values = shard.lookup_pair_now(key)
                    if values:
                        holders.append(index)
                        copies += sum(1 for v in values if v == value)
                if copies == 0:
                    violations.append(
                        f"lost: completed publish {key!r}={value!r} "
                        f"not found on any catalog shard")
                elif len(holders) > 1:
                    violations.append(
                        f"duplicated: key {key!r} lives on catalog shards "
                        f"{holders}")
                elif copies > 1:
                    violations.append(
                        f"duplicated: value {value!r} appears {copies} "
                        f"times under key {key!r}")
            elif kind == "pin":
                owners = set()
                for shard in fabric.scheduler_shards:
                    entry = shard.entry(key)
                    if entry is not None:
                        owners.update(entry.owners)
                if value not in owners:
                    violations.append(
                        f"lost: completed pin of {key!r} on {value!r} "
                        f"but owners are {sorted(owners)}")

        managed: Dict[str, List[int]] = {}
        for index, shard in enumerate(fabric.scheduler_shards):
            for uid in shard.migration_keys():
                managed.setdefault(uid, []).append(index)
        for uid, shards in sorted(managed.items()):
            if len(shards) > 1:
                violations.append(
                    f"duplicated: scheduler uid {uid!r} managed by shards "
                    f"{shards}")

        pending = self.ledger.pending
        if pending:
            violations.append(
                f"{len(pending)} ledger records still pending "
                f"(first: {pending[0]})")
        return violations

    def assert_ok(self) -> None:
        violations = self.verify()
        assert not violations, "chaos invariants violated:\n" + "\n".join(
            f"  - {v}" for v in violations)
