"""Reusable fault-injection and invariant-checking harness for the fabric.

The elastic-fabric claims — "no request is lost, none is double-applied,
no key is left behind" — are global invariants over the catalog and
scheduler shards, not properties of any single call.  This module gives
the chaos tests one vocabulary for proving them:

* :class:`RequestLedger` — a linear ledger of every client request a test
  issues.  Each request is ``begin``-ed before its first RPC and either
  ``complete``-d (with what the client believes it accomplished) or
  ``fail``-ed (the client saw an error — allowed, but then the ledger does
  not demand the effect).  Verification replays the ledger against the raw
  shard state, bypassing the router: a *completed* effect must exist
  exactly once across ALL shards, whatever migrations happened since.

* :class:`ChaosHarness` — fault injection synchronised with the migration
  protocol.  ``crash_on_phase`` returns an ``on_phase`` callback for the
  :class:`~repro.services.rebalance.RebalanceCoordinator` that kills a
  chosen service host the instant a chosen phase begins (the worst
  moments: mid-copy, right at the seal, during the source drops), with an
  optional scheduled recovery.  ``verify`` audits the invariants and
  returns human-readable violations; ``assert_ok`` raises on any.

The harness is deliberately dependency-free (stdlib only) so the CI smoke
jobs and the property suite can both drive it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ChaosHarness", "FederationChaosHarness", "RequestLedger"]


class RequestLedger:
    """A linear record of every client request issued by a test."""

    def __init__(self):
        self.records: List[Dict[str, object]] = []
        self._next_rid = 0

    def begin(self, kind: str, key: str, value: Optional[str] = None) -> dict:
        """Open a ledger record before the request's first RPC."""
        record = {"rid": self._next_rid, "kind": kind, "key": key,
                  "value": value, "status": "pending"}
        self._next_rid += 1
        self.records.append(record)
        return record

    @staticmethod
    def complete(record: dict) -> None:
        record["status"] = "completed"

    @staticmethod
    def fail(record: dict) -> None:
        record["status"] = "failed"

    def by_status(self, status: str) -> List[dict]:
        return [r for r in self.records if r["status"] == status]

    @property
    def completed(self) -> List[dict]:
        return self.by_status("completed")

    @property
    def pending(self) -> List[dict]:
        return self.by_status("pending")

    @property
    def failed(self) -> List[dict]:
        return self.by_status("failed")


class ChaosHarness:
    """Crash service hosts at migration phase boundaries; audit invariants."""

    def __init__(self, runtime, ledger: Optional[RequestLedger] = None):
        self.runtime = runtime
        self.env = runtime.env
        self.fabric = runtime.fabric
        self.ledger = ledger if ledger is not None else RequestLedger()
        #: (phase, host name, time) per injected crash
        self.crashes: List[tuple] = []
        #: phases observed, in order (the protocol's audit trail)
        self.phases: List[tuple] = []

    # ------------------------------------------------------------------ faults
    def crash_on_phase(self, phase: str, host, recover_after_s: float = 6.0,
                       chain=None):
        """An ``on_phase`` callback crashing *host* when *phase* begins.

        The crash lands synchronously inside the coordinator's phase
        transition — before the phase's first RPC — which is the worst
        instant for it: every in-flight client call and every coordinator
        copy targeting the host must fail over.  With ``recover_after_s``
        the host comes back (its heartbeats resume and routing returns);
        pass ``None`` to leave it dead.  ``chain`` composes another
        ``on_phase`` callback (observed before the crash).
        """
        def on_phase(name, migration):
            self.phases.append((name, self.env.now))
            if chain is not None:
                chain(name, migration)
            if name == phase and host.online:
                self.crashes.append((name, host.name, self.env.now))
                self.runtime.crash_service_host(host)
                if recover_after_s is not None:
                    self.env.process(self._recover_later(host,
                                                         recover_after_s))
        return on_phase

    def observe_phases(self):
        """An ``on_phase`` callback that only records the protocol trail."""
        def on_phase(name, migration):
            self.phases.append((name, self.env.now))
        return on_phase

    def _recover_later(self, host, delay_s: float):
        yield self.env.timeout(delay_s)
        if not host.online:
            self.runtime.recover_service_host(host)

    # ------------------------------------------------------------------ audit
    def verify(self) -> List[str]:
        """Audit the ledger and the global shard invariants; return violations.

        Raw-scans every shard (no router, no RPC cost), so the audit sees
        exactly what migrations left behind:

        * a completed ``publish`` record's (key, value) exists on exactly
          one catalog shard, exactly once;
        * a completed ``pin`` record's host owns the uid on the scheduler;
        * every scheduler uid is managed by exactly one shard;
        * no ledger record is still pending (the test must resolve every
          request it began — lost-in-flight requests are the bug chaos
          testing exists to catch).
        """
        violations: List[str] = []
        fabric = self.fabric

        for record in self.ledger.completed:
            kind, key, value = record["kind"], record["key"], record["value"]
            if kind == "publish":
                holders = []
                copies = 0
                for index, shard in enumerate(fabric.catalog_shards):
                    values = shard.lookup_pair_now(key)
                    if values:
                        holders.append(index)
                        copies += sum(1 for v in values if v == value)
                if copies == 0:
                    violations.append(
                        f"lost: completed publish {key!r}={value!r} "
                        f"not found on any catalog shard")
                elif len(holders) > 1:
                    violations.append(
                        f"duplicated: key {key!r} lives on catalog shards "
                        f"{holders}")
                elif copies > 1:
                    violations.append(
                        f"duplicated: value {value!r} appears {copies} "
                        f"times under key {key!r}")
            elif kind == "pin":
                owners = set()
                for shard in fabric.scheduler_shards:
                    entry = shard.entry(key)
                    if entry is not None:
                        owners.update(entry.owners)
                if value not in owners:
                    violations.append(
                        f"lost: completed pin of {key!r} on {value!r} "
                        f"but owners are {sorted(owners)}")

        managed: Dict[str, List[int]] = {}
        for index, shard in enumerate(fabric.scheduler_shards):
            for uid in shard.migration_keys():
                managed.setdefault(uid, []).append(index)
        for uid, shards in sorted(managed.items()):
            if len(shards) > 1:
                violations.append(
                    f"duplicated: scheduler uid {uid!r} managed by shards "
                    f"{shards}")

        pending = self.ledger.pending
        if pending:
            violations.append(
                f"{len(pending)} ledger records still pending "
                f"(first: {pending[0]})")
        return violations

    def assert_ok(self) -> None:
        violations = self.verify()
        assert not violations, "chaos invariants violated:\n" + "\n".join(
            f"  - {v}" for v in violations)


class FederationChaosHarness:
    """WAN faults at replication phase boundaries; sovereignty audit.

    The federated counterpart of :class:`ChaosHarness`: instead of crashing
    service hosts inside one fabric, it severs the WAN link between two
    domains — optionally synchronised with the
    :class:`~repro.federation.replication.FederationReplicator` protocol via
    ``partition_on_phase`` (scan/offer/copy/commit, mirroring the rebalance
    coordinator's hook).  ``verify`` replays a ledger of intended exports
    against the raw per-domain state and runs the sovereignty audit: no
    export lost, none double-installed, and nothing non-``public`` observed
    outside its home domain.
    """

    def __init__(self, federation, ledger: Optional[RequestLedger] = None):
        self.federation = federation
        self.env = federation.env
        self.ledger = ledger if ledger is not None else RequestLedger()
        #: ("sever"|"heal", domain_a, domain_b, time) per injected WAN fault
        self.faults: List[tuple] = []
        #: replication phases observed, in order
        self.phases: List[tuple] = []

    # ------------------------------------------------------------------ faults
    def partition(self, domain_a: str, domain_b: str) -> None:
        """Sever the WAN link between two domains (both directions)."""
        self.faults.append(("sever", domain_a, domain_b, self.env.now))
        self.federation.partition(domain_a, domain_b)

    def heal(self, domain_a: str, domain_b: str) -> None:
        self.faults.append(("heal", domain_a, domain_b, self.env.now))
        self.federation.heal(domain_a, domain_b)

    def partition_on_phase(self, phase: str, domain_a: str, domain_b: str,
                           heal_after_s: Optional[float] = 6.0, chain=None):
        """An ``on_phase`` callback severing the WAN when *phase* begins.

        Fires once, synchronously inside the replicator's phase transition
        — before the phase's first WAN call — so every in-flight offer,
        bulk copy and import of that round sees the partition.  With
        ``heal_after_s`` the link heals later and the replicator's periodic
        replanning must catch up exactly-once; pass ``None`` to leave the
        federation split.  ``chain`` composes another callback.
        """
        fired = [False]

        def on_phase(name, replicator):
            self.phases.append((name, self.env.now))
            if chain is not None:
                chain(name, replicator)
            if name == phase and not fired[0]:
                fired[0] = True
                self.partition(domain_a, domain_b)
                if heal_after_s is not None:
                    self.env.process(
                        self._heal_later(domain_a, domain_b, heal_after_s))
        return on_phase

    def observe_phases(self):
        """An ``on_phase`` callback that only records the protocol trail."""
        def on_phase(name, replicator):
            self.phases.append((name, self.env.now))
        return on_phase

    def _heal_later(self, domain_a: str, domain_b: str, delay_s: float):
        yield self.env.timeout(delay_s)
        link = self.federation.link(domain_a, domain_b)
        if not link.up:
            self.heal(domain_a, domain_b)

    # ------------------------------------------------------------------ audit
    def _catalog_copies(self, domain, uid: str) -> int:
        return sum(1 for row in domain.catalog.all_data_now()
                   if row.uid == uid)

    def verify(self) -> List[str]:
        """Audit the export ledger and the sovereignty invariants.

        Raw-scans every domain (no gateways, no WAN), so the audit sees
        exactly what the partition left behind:

        * a completed ``replicate`` record's uid is installed in the target
          domain exactly once (catalog), not zero (lost) or more
          (duplicated);
        * nothing non-``public`` is observed outside its home domain —
          ``private`` leaks via :meth:`Federation.private_leaks`, and any
          pinned (``unlisted``/``private``) datum in a foreign catalog is a
          replication policy breach;
        * no ledger record is still pending.
        """
        violations: List[str] = []
        federation = self.federation

        for record in self.ledger.completed:
            if record["kind"] != "replicate":
                continue
            uid, target = record["key"], record["value"]
            domain = federation.domain(target)
            copies = self._catalog_copies(domain, uid)
            if copies == 0:
                violations.append(
                    f"lost: completed replicate of {uid!r} to {target!r} "
                    f"but the target catalog does not know it")
            elif copies > 1:
                violations.append(
                    f"duplicated: {uid!r} installed {copies} times in "
                    f"{target!r}")

        violations.extend(federation.private_leaks())

        for home_name, home in federation.domains.items():
            for data in home.home_data():
                if home.visibility_of(data.uid) == "public":
                    continue
                for other_name, other in federation.domains.items():
                    if other_name != home_name and other.knows(data.uid):
                        violations.append(
                            f"leaked: pinned "
                            f"({home.visibility_of(data.uid)}) datum "
                            f"{data.uid} (home {home_name}) observed in "
                            f"{other_name}'s catalog")

        pending = self.ledger.pending
        if pending:
            violations.append(
                f"{len(pending)} ledger records still pending "
                f"(first: {pending[0]})")
        return violations

    def assert_ok(self) -> None:
        violations = self.verify()
        assert not violations, "federation invariants violated:\n" + "\n".join(
            f"  - {v}" for v in violations)
