"""Unit tests for workload generators and churn traces."""

import pytest

from repro.net.topology import cluster_topology
from repro.core.runtime import BitDewEnvironment
from repro.sim.rng import RandomStreams
from repro.workloads.generator import (
    FileSpec,
    filecule_group,
    parameter_sweep_tasks,
    transfer_matrix,
)
from repro.workloads.traces import (
    ChurnEvent,
    ChurnScript,
    availability_trace,
    crash_replace_script,
)


class TestFileSpecAndMatrix:
    def test_filespec_content(self):
        spec = FileSpec(name="f.bin", size_mb=3)
        content = spec.content()
        assert content.size_mb == 3
        assert spec.content().checksum == content.checksum

    def test_transfer_matrix_default_is_paper_grid(self):
        matrix = transfer_matrix()
        assert len(matrix) == 5 * 7
        assert (10.0, 10) in matrix
        assert (500.0, 250) in matrix

    def test_transfer_matrix_validation(self):
        with pytest.raises(ValueError):
            transfer_matrix(sizes_mb=[0])
        with pytest.raises(ValueError):
            transfer_matrix(node_counts=[-5])


class TestParameterSweep:
    def test_task_count_and_shared_files(self):
        shared = [FileSpec("genebase", 2744, shared=True)]
        tasks = parameter_sweep_tasks(20, shared, rng=RandomStreams(1))
        assert len(tasks) == 20
        assert all(t.shared_files == (shared[0],) for t in tasks)
        assert len({t.input_file.name for t in tasks}) == 20

    def test_compute_time_variability_bounded(self):
        tasks = parameter_sweep_tasks(200, [], reference_compute_s=100,
                                      compute_cv=0.1, rng=RandomStreams(2))
        times = [t.reference_compute_s for t in tasks]
        assert all(t >= 25 for t in times)
        mean = sum(times) / len(times)
        assert 90 <= mean <= 110

    def test_deterministic_under_seed(self):
        a = parameter_sweep_tasks(10, [], rng=RandomStreams(3))
        b = parameter_sweep_tasks(10, [], rng=RandomStreams(3))
        assert [t.reference_compute_s for t in a] == [t.reference_compute_s for t in b]

    def test_validation(self):
        with pytest.raises(ValueError):
            parameter_sweep_tasks(0, [])


class TestFilecules:
    def test_sizes_sum_close_to_total(self):
        group = filecule_group("physics", 20, total_size_mb=1000,
                               rng=RandomStreams(4))
        assert len(group) == 20
        total = sum(f.size_mb for f in group)
        assert total == pytest.approx(1000, rel=0.15)

    def test_skewed_sizes(self):
        group = filecule_group("physics", 10, total_size_mb=100,
                               rng=RandomStreams(4))
        assert group[0].size_mb > group[-1].size_mb * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            filecule_group("x", 0, 10)
        with pytest.raises(ValueError):
            filecule_group("x", 5, 0)


class TestChurnTraces:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            ChurnEvent(time_s=1, host_name="h", action="explode")
        with pytest.raises(ValueError):
            ChurnEvent(time_s=-1, host_name="h", action="crash")

    def test_availability_trace_sorted_and_alternating(self):
        events = availability_trace([f"h{i}" for i in range(5)], horizon_s=20000,
                                    mean_availability_s=2000,
                                    mean_unavailability_s=500,
                                    rng=RandomStreams(6))
        times = [e.time_s for e in events]
        assert times == sorted(times)
        per_host = {}
        for event in events:
            per_host.setdefault(event.host_name, []).append(event.action)
        for actions in per_host.values():
            # Hosts start online, so the first transition is always a crash
            # and actions alternate afterwards.
            assert actions[0] == "crash"
            for first, second in zip(actions, actions[1:]):
                assert first != second

    def test_availability_trace_weibull_and_validation(self):
        events = availability_trace(["h0"], horizon_s=10000,
                                    distribution="weibull", rng=RandomStreams(6))
        assert all(e.time_s <= 10000 for e in events)
        with pytest.raises(ValueError):
            availability_trace(["h0"], horizon_s=0)
        with pytest.raises(ValueError):
            availability_trace(["h0"], horizon_s=10, distribution="uniformish")

    def test_crash_replace_script_pairs_events(self):
        events = crash_replace_script(["a", "b", "c"], ["x", "y"], interval_s=20,
                                      start_s=100)
        assert len(events) == 4
        assert events[0].time_s == 100 and events[0].action == "crash"
        assert events[1].time_s == 100 and events[1].action == "join"
        assert events[2].time_s == 120
        with pytest.raises(ValueError):
            crash_replace_script(["a"], ["x"], interval_s=0)

    def test_churn_script_replay(self, env):
        topo = cluster_topology(env, n_workers=3)
        runtime = BitDewEnvironment(topo)
        runtime.attach_all()
        victim = topo.worker_hosts[0]
        spare = topo.worker_hosts[2]
        script = ChurnScript(runtime, [
            ChurnEvent(time_s=5, host_name=victim.name, action="crash"),
            ChurnEvent(time_s=10, host_name=victim.name, action="join"),
        ])
        script.start()
        env.run(until=4)
        assert victim.online
        env.run(until=7)
        assert not victim.online
        env.run(until=12)
        assert victim.online
        assert len(script.applied) == 2

    def test_churn_script_unknown_host(self, env):
        topo = cluster_topology(env, n_workers=1)
        runtime = BitDewEnvironment(topo)
        script = ChurnScript(runtime, [ChurnEvent(1, "ghost", "crash")])
        with pytest.raises(KeyError):
            script.apply(ChurnEvent(1, "ghost", "crash"))
