"""Host cohorts and the scale-grid-100k harness.

The perf claims of the cohort-batched scale path only hold if the batching
is *transparent*: the same simulated quantities must come out whichever
scheduler/allocator combination runs underneath.  These tests pin the
cohort bookkeeping itself and that end-to-end equivalence on a reduced
grid (the CI ``kernel-smoke`` job repeats it at 10k hosts).
"""

from types import SimpleNamespace

import pytest

from repro.experiments import run_scenario
from repro.net.flows import Network
from repro.net.host import Host
from repro.sim.kernel import Environment
from repro.workloads import (
    HostCohort,
    build_cohorts,
    cohort_heartbeat_process,
    cohort_sync_process,
)

pytest.importorskip("numpy")


def _hosts(n):
    return [Host(f"c{i:03d}", uplink_mbps=50, downlink_mbps=50)
            for i in range(n)]


# ---------------------------------------------------------------------------
# Cohort bookkeeping
# ---------------------------------------------------------------------------

class TestBuildCohorts:
    def test_partitions_with_short_tail(self):
        cohorts = build_cohorts(_hosts(10), 4)
        assert [len(c) for c in cohorts] == [4, 4, 2]
        assert [c.index for c in cohorts] == [0, 1, 2]
        names = [h.name for c in cohorts for h in c.hosts]
        assert names == [f"c{i:03d}" for i in range(10)]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_cohorts(_hosts(4), 0)
        with pytest.raises(ValueError):
            HostCohort(0, [])

    def test_fresh_cohort_accounting(self):
        cohort = build_cohorts(_hosts(5), 5)[0]
        assert cohort.total_downloads == 0
        assert cohort.total_bytes_mb == 0.0
        assert cohort.last_completion_s == -1.0
        assert cohort.syncs == 0 and cohort.heartbeats == 0


class TestCohortHeartbeat:
    def test_multiplexes_per_host_timers(self):
        """N hosts at period P arrive as one event every P/N: same number
        of heartbeats, same kernel event density, one generator."""
        env = Environment()
        cohort = build_cohorts(_hosts(4), 4)[0]
        beats = []
        env.process(cohort_heartbeat_process(
            env, cohort, period_s=1.0, duration_s=3.0,
            beat=lambda _c, host_idx: beats.append((env.now, host_idx))))
        env.run()
        assert cohort.heartbeats == 12           # 4 hosts x 3 periods
        assert env.now == pytest.approx(3.0)
        # Round-robin over the cohort, evenly spaced at period/N.
        assert [i for _t, i in beats] == [0, 1, 2, 3] * 3
        times = [t for t, _i in beats]
        assert times == pytest.approx([0.25 * (k + 1) for k in range(12)])

    def test_zero_duration_is_a_no_op(self):
        env = Environment()
        cohort = build_cohorts(_hosts(2), 2)[0]
        env.process(cohort_heartbeat_process(env, cohort, 1.0, 0.0))
        env.run()
        assert cohort.heartbeats == 0


class TestCohortSync:
    def test_downloads_and_accounts_per_host(self):
        env = Environment()
        network = Network(env, default_latency_s=0.0)
        server = network.add_host(Host("server", uplink_mbps=100,
                                       downlink_mbps=100))
        hosts = [network.add_host(h) for h in _hosts(3)]
        cohort = build_cohorts(hosts, 3)[0]
        size_mb_of = {"u1": 5.0}

        def sync(_host_name, cached):
            return SimpleNamespace(
                to_download=[] if "u1" in cached else ["u1"])

        def transfer(host, uid):
            return network.transfer(server, host, size_mb_of[uid])

        env.process(cohort_sync_process(env, cohort, sync, transfer,
                                        size_mb_of, rounds=2,
                                        sync_gap_s=0.5))
        env.run()
        assert cohort.syncs == 6                  # 3 hosts x 2 rounds
        assert cohort.total_downloads == 3        # second round: all cached
        assert cohort.total_bytes_mb == pytest.approx(15.0)
        assert all("u1" in cached for cached in cohort.cached)
        assert cohort.last_completion_s > 0.0
        assert network.completed_flows == 3

    def test_stagger_offsets_cohort_start(self):
        env = Environment()
        # A cohort with a non-zero index, to observe the stagger.
        late = build_cohorts(_hosts(4), 2)[1]
        seen = []

        def sync(host_name, _cached):
            seen.append((env.now, host_name))
            return SimpleNamespace(to_download=[])

        env.process(cohort_sync_process(env, late, sync, lambda h, u: None,
                                        {}, rounds=1, stagger_s=3.0,
                                        sync_gap_s=0.0))
        env.run()
        assert [t for t, _n in seen] == [3.0, 3.0]   # stagger_s * index 1


# ---------------------------------------------------------------------------
# scale-grid-100k (reduced): identical results whatever runs underneath
# ---------------------------------------------------------------------------

_SMALL = dict(n_hosts=1000, n_data=200, cohort_size=250, sync_rounds=1,
              heartbeat_duration_s=5.0)

#: wall-clock-derived keys plus the echoed perf knobs themselves
#: (``placement`` is only echoed by scale-grid-300k, where it is an
#: ordinary parameter; on the 100k scenario it rides **perf unseen).
_VOLATILE = {"wall_s", "setup_wall_s", "run_wall_s", "events_per_sec",
             "scheduler", "allocator", "placement"}


def _simulated(results):
    return {k: v for k, v in results.items() if k not in _VOLATILE}


class TestScaleGrid100k:
    def test_scheduler_and_allocator_do_not_change_the_simulation(self):
        fast = run_scenario("scale-grid-100k", **_SMALL)
        reference = run_scenario("scale-grid-100k", scheduler="heap",
                                 allocator="incremental", **_SMALL)
        assert fast["scheduler"] == "calendar"
        assert fast["allocator"] == "vector"
        assert reference["scheduler"] == "heap"
        assert _simulated(fast) == _simulated(reference)

    def test_oracle_certifies_the_reduced_grid(self):
        certified = run_scenario("scale-grid-100k", scheduler="oracle",
                                 **_SMALL)
        fast = run_scenario("scale-grid-100k", **_SMALL)
        assert _simulated(certified) == _simulated(fast)

    def test_reduced_grid_invariants(self):
        results = run_scenario("scale-grid-100k", **_SMALL)
        assert results["n_hosts"] == 1000
        assert results["cohorts"] == 4
        # Every datum reached its replica target; each placement is one
        # completed download.
        assert results["placed"] == 200
        assert results["downloaded"] == 200 * results["replica"]
        assert results["completed_flows"] == results["downloaded"]
        assert results["syncs"] >= 1000
        assert results["heartbeats"] == 1000  # 1000 hosts x 5s / 5s period
        assert results["processed_events"] > results["heartbeats"]
        assert results["sim_time_s"] > 0.0
        assert results["events_per_sec"] > 0.0

    def test_batched_placement_does_not_change_the_simulation(self):
        """``placement=batch`` evaluates each cohort round with one
        ``compute_schedule_batch`` call; every simulated quantity must
        match the per-host default, and the knob must stay invisible in
        the result echo (it rides **perf, not the spec)."""
        default = run_scenario("scale-grid-100k", **_SMALL)
        batched = run_scenario("scale-grid-100k", placement="batch", **_SMALL)
        assert "placement" not in batched
        assert _simulated(batched) == _simulated(default)

    def test_batch_and_array_compose_transparently(self):
        # The full fast stack (batch placement + array calendar) against
        # the stock defaults: still the same simulation.
        default = run_scenario("scale-grid-100k", **_SMALL)
        fast = run_scenario("scale-grid-100k", placement="batch",
                            scheduler="array", **_SMALL)
        assert _simulated(fast) == _simulated(default)

    def test_unknown_placement_is_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            run_scenario("scale-grid-100k", placement="turbo", **_SMALL)

    def test_unknown_perf_knob_is_rejected(self):
        # scale-grid takes perf knobs through **perf (so its spec echo —
        # and the 21 pre-existing scenarios' output bytes — stay stable);
        # the validation still catches typos.
        with pytest.raises(ValueError, match="unknown parameters"):
            run_scenario("scale-grid", n_hosts=50, n_data=20, turbo=True)
        # The 100k scenario now routes perf knobs (``placement``) through
        # **perf too, so its spec echo keeps the pre-batching bytes; its
        # harness validates the leftovers itself.
        with pytest.raises(ValueError, match="unknown parameters"):
            run_scenario("scale-grid-100k", turbo=True, **_SMALL)


# ---------------------------------------------------------------------------
# scale-grid-300k (reduced): the fast defaults are transparent
# ---------------------------------------------------------------------------

class TestScaleGrid300k:
    def test_fast_defaults_match_the_reference_path(self):
        """The 300k tier is born with the fast stack as its defaults
        (array calendar, vectorized allocator, batched placement); a
        reduced grid must still simulate identically to the reference
        heap/incremental/per-host path."""
        fast = run_scenario("scale-grid-300k", **_SMALL)
        reference = run_scenario("scale-grid-300k", scheduler="heap",
                                 allocator="incremental", placement="host",
                                 **_SMALL)
        assert fast["scheduler"] == "array"
        assert fast["allocator"] == "vector"
        assert fast["placement"] == "batch"
        assert reference["placement"] == "host"
        assert _simulated(fast) == _simulated(reference)

    def test_reduced_grid_reports_its_own_scenario(self):
        results = run_scenario("scale-grid-300k", **_SMALL)
        assert results["scenario"] == "scale-grid-300k"
        assert results["placed"] == 200
        assert results["downloaded"] == 200 * results["replica"]
        assert results["completed_flows"] == results["downloaded"]
