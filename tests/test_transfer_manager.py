"""Unit tests for the TransferManager API."""

import pytest

from repro.core.data import Data
from repro.core.exceptions import TransferAbortedError
from repro.core.runtime import BitDewEnvironment
from repro.core.transfer_manager import TransferManager
from repro.net.topology import cluster_topology
from repro.transfer.oob import TransferState


class FakeAgent:
    """Minimal agent stand-in (the manager only needs env + host.name)."""

    class _Host:
        name = "fake-host"

    def __init__(self, env):
        self.env = env
        self.host = self._Host()


@pytest.fixture
def manager(env):
    return TransferManager(FakeAgent(env), max_concurrent=2)


class TestTracking:
    def test_probe_before_any_transfer(self, manager):
        assert manager.probe(Data(name="x")) is TransferState.PENDING

    def test_track_and_wait_success(self, env, manager, drive):
        data = Data(name="x")

        def fake_transfer():
            yield env.timeout(2)
            return "ok"

        manager.track(data, env.process(fake_transfer()))
        assert manager.pending_count == 1
        assert manager.probe(data) is TransferState.TRANSFERRING

        def waiter():
            state = yield from manager.wait_for(data)
            return state

        state = drive(env, waiter())
        assert state is TransferState.COMPLETE
        assert manager.completed == 1
        assert manager.pending_count == 0
        assert manager.probe(data) is TransferState.COMPLETE

    def test_wait_for_failure_raises(self, env, manager):
        data = Data(name="x")

        def failing():
            yield env.timeout(1)
            raise RuntimeError("broken link")

        manager.track(data, env.process(failing()))

        def waiter():
            yield from manager.wait_for(data)

        process = env.process(waiter())
        with pytest.raises(TransferAbortedError):
            env.run(until=process)
        assert manager.failed == 1
        assert manager.probe(data) is TransferState.FAILED

    def test_wait_for_nothing_pending_returns_immediately(self, env, manager, drive):
        state = drive(env, manager.wait_for(Data(name="never-seen")))
        assert state is TransferState.COMPLETE or state is TransferState.PENDING

    def test_wait_for_previously_failed_raises(self, env, manager, drive):
        data = Data(name="x")

        def failing():
            yield env.timeout(1)
            raise RuntimeError("boom")

        manager.track(data, env.process(failing()))
        env.run(until=5)

        def waiter():
            yield from manager.wait_for(data)

        process = env.process(waiter())
        with pytest.raises(TransferAbortedError):
            env.run(until=process)

    def test_paper_style_alias(self, env, manager, drive):
        data = Data(name="x")

        def ok():
            yield env.timeout(1)

        manager.track(data, env.process(ok()))
        state = drive(env, manager.waitFor(data))
        assert state is TransferState.COMPLETE

    def test_barrier_waits_for_everything(self, env, manager, drive):
        datas = [Data(name=f"d{i}") for i in range(3)]

        def transfer(delay):
            yield env.timeout(delay)

        for delay, data in zip((1, 2, 3), datas):
            manager.track(data, env.process(transfer(delay)))

        def waiter():
            count = yield from manager.barrier()
            return count, env.now

        count, when = drive(env, waiter())
        assert count == 3
        assert when == pytest.approx(3)

    def test_barrier_tolerates_failures(self, env, manager, drive):
        ok_data, bad_data = Data(name="ok"), Data(name="bad")

        def good():
            yield env.timeout(1)

        def bad():
            yield env.timeout(2)
            raise RuntimeError("nope")

        manager.track(ok_data, env.process(good()))
        manager.track(bad_data, env.process(bad()))

        def waiter():
            yield from manager.wait_all()
            return env.now

        when = drive(env, waiter())
        assert when >= 2
        assert manager.failed == 1
        assert manager.completed == 1

    def test_pending_data_uids(self, env, manager):
        data = Data(name="x")

        def slow():
            yield env.timeout(10)

        manager.track(data, env.process(slow()))
        assert manager.pending_data_uids() == [data.uid]


class TestConcurrencyControl:
    def test_slots_limit_concurrency(self, env, manager):
        active = []
        peak = []

        def worker():
            slot = yield from manager.acquire_slot()
            active.append(1)
            peak.append(len(active))
            yield env.timeout(1)
            active.pop()
            manager.release_slot(slot)

        for _ in range(6):
            env.process(worker())
        env.run()
        assert max(peak) == 2

    def test_set_max_concurrent(self, env, manager):
        manager.set_max_concurrent(5)
        assert manager.max_concurrent == 5
        with pytest.raises(ValueError):
            manager.set_max_concurrent(0)

    def test_runtime_agent_exposes_manager(self, env):
        topo = cluster_topology(env, n_workers=1)
        runtime = BitDewEnvironment(topo)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        assert isinstance(agent.transfer_manager, TransferManager)
        assert agent.transfer_manager.pending_count == 0
