"""Integration tests for the applications built on BitDew."""

import pytest

from repro.apps.blast import BlastParameters, build_blast_application
from repro.apps.master_worker import (
    MasterWorkerApplication,
    SharedInput,
    TaskSpec,
)
from repro.apps.updater import UpdaterApplication
from repro.core.runtime import BitDewEnvironment
from repro.net.topology import cluster_topology, grid5000_testbed
from repro.sim.kernel import Environment
from repro.transfer.registry import default_registry


def small_runtime(env, n_workers, **kwargs):
    topo = cluster_topology(env, n_workers=n_workers)
    registry = default_registry(env, topo.network, bittorrent_mode="fluid")
    kwargs.setdefault("sync_period_s", 2.0)
    kwargs.setdefault("monitor_period_s", 0.5)
    kwargs.setdefault("max_data_schedule", 4)
    runtime = BitDewEnvironment(topo, registry=registry, **kwargs)
    return topo, runtime


class TestUpdaterApplication:
    def test_update_reaches_all_nodes_and_reports_back(self, env):
        topo, runtime = small_runtime(env, n_workers=4)
        app = UpdaterApplication(runtime, master_host=topo.service_host,
                                 update_size_mb=8, protocol="ftp")
        app.register_updatees()
        env.process(app.start())
        env.run(until=120)
        assert app.update_data is not None
        worker_names = {h.name for h in topo.worker_hosts}
        assert set(app.updatees) == worker_names
        assert app.all_updated()
        # Every updatee holds the update content.
        for host in topo.worker_hosts:
            agent = runtime.agent(host)
            assert agent.has_content(app.update_data.uid)

    def test_lifetime_bound_update_is_cleaned_up(self, env):
        topo, runtime = small_runtime(env, n_workers=2)
        app = UpdaterApplication(runtime, master_host=topo.service_host,
                                 update_size_mb=2, protocol="http",
                                 lifetime_s=30.0)
        app.register_updatees()
        env.process(app.start())
        env.run(until=200)
        assert len(app.deletions) == 2
        for host in topo.worker_hosts:
            assert not runtime.agent(host).has_local(app.update_data.uid)


class TestMasterWorkerFramework:
    def _build(self, env, n_workers=4, n_tasks=4, reference_compute_s=20.0,
               **app_kwargs):
        topo, runtime = small_runtime(env, n_workers=n_workers)
        shared = [SharedInput(name="binary", size_mb=4, replica=-1),
                  SharedInput(name="dataset", size_mb=32, affinity_to_tasks=True,
                              compressed=True, unzip_reference_s=5.0)]
        tasks = [TaskSpec(task_id=i, input_name=f"in-{i}", input_size_mb=0.01,
                          reference_compute_s=reference_compute_s, result_size_mb=0.1)
                 for i in range(n_tasks)]
        app = MasterWorkerApplication(
            runtime, master_host=topo.service_host, shared_inputs=shared,
            tasks=tasks, shared_protocol="ftp", **app_kwargs)
        app.register_workers()
        return topo, runtime, app

    def test_all_tasks_execute_and_results_collected(self, env):
        topo, runtime, app = self._build(env, n_workers=4, n_tasks=4)
        report = app.run(deadline_s=2000, poll_s=5)
        assert report.tasks_executed == 4
        assert report.results_collected == 4
        assert report.makespan_s > 0
        assert app.all_results_collected()
        # Execution happened on workers, never on the master.
        assert all(r.host_name != topo.service_host.name for r in report.records)

    def test_breakdown_contains_all_components(self, env):
        topo, runtime, app = self._build(env, n_workers=3, n_tasks=3)
        report = app.run(deadline_s=2000, poll_s=5)
        breakdown = report.mean_breakdown()
        assert breakdown["transfer_s"] > 0
        assert breakdown["unzip_s"] > 0
        assert breakdown["execution_s"] > 0
        by_cluster = report.breakdown_by_cluster()
        assert "gdx" in by_cluster
        assert by_cluster["gdx"]["tasks"] == 3

    def test_shared_dataset_only_on_computing_hosts(self, env):
        """The affinity-scheduled dataset must not land on idle hosts."""
        topo, runtime, app = self._build(env, n_workers=6, n_tasks=2)
        app.run(deadline_s=2000, poll_s=5)
        dataset = app.shared_data["dataset"]
        holders = [a for a in runtime.agents.values()
                   if a.host in topo.worker_hosts and a.has_content(dataset.uid)]
        executing_hosts = {r.host_name for r in app.records}
        assert {a.host.name for a in holders} == executing_hosts
        assert len(holders) < 6

    def test_cleanup_deletes_collector_and_obsoletes_dependents(self, env, drive):
        topo, runtime, app = self._build(env, n_workers=3, n_tasks=3)
        app.run(deadline_s=2000, poll_s=5)
        drive(env, app.cleanup())
        env.run(until=env.now + 30)
        scheduler = runtime.data_scheduler
        assert scheduler.entry(app.collector_data.uid) is None
        # Every datum with a lifetime relative to the Collector is obsolete and
        # has been dropped from the worker caches.
        for agent in runtime.agents.values():
            if agent.host is topo.service_host:
                continue
            for data in agent.local_data():
                assert agent.attribute_of(data).relative_lifetime != app.collector_name

    def test_worker_crash_reschedules_fault_tolerant_task(self, env):
        topo, runtime, app = self._build(env, n_workers=3, n_tasks=1,
                                         reference_compute_s=200.0,
                                         task_fault_tolerance=True)
        env.process(app._master_program())
        env.run(until=40)
        # Find the worker that got the (single) task input and crash it
        # before the computation finishes.
        task_uid = next(iter(app._tasks_by_input_uid))
        owner_names = runtime.data_scheduler.owners_of(task_uid)
        worker_owners = [n for n in owner_names if n != topo.service_host.name]
        assert worker_owners
        victim = runtime.network.hosts[worker_owners[0]]
        runtime.crash_host(victim)
        env.run(until=1200)
        assert app.results_collected >= 1
        survivor = [r.host_name for r in app.records if r.completed_at is not None]
        assert victim.name not in survivor


class TestBlastApplication:
    def test_parameters_and_builder_validation(self, env):
        topo, runtime = small_runtime(env, n_workers=2)
        with pytest.raises(ValueError):
            build_blast_application(runtime, topo.service_host, n_tasks=0)

    def test_blast_defaults_follow_the_paper(self):
        params = BlastParameters()
        assert params.application_mb == pytest.approx(4.45)
        assert params.genebase_mb == pytest.approx(2744.0)
        assert params.genebase_mb / 1024.0 == pytest.approx(2.68, rel=0.01)

    def test_small_blast_run_completes(self, env):
        topo, runtime = small_runtime(env, n_workers=3, sync_period_s=5.0)
        params = BlastParameters(genebase_mb=64, execution_reference_s=30,
                                 unzip_reference_s=5)
        app = build_blast_application(runtime, topo.service_host, n_tasks=3,
                                      transfer_protocol="bittorrent",
                                      parameters=params)
        app.register_workers()
        report = app.run(deadline_s=3000, poll_s=5)
        assert report.results_collected == 3
        assert report.tasks_executed == 3
        breakdown = report.mean_breakdown()
        assert breakdown["unzip_s"] > 0

    def test_blast_attribute_wiring(self, env):
        """The application's attributes follow Listing 3 of the paper."""
        topo, runtime = small_runtime(env, n_workers=2)
        app = build_blast_application(runtime, topo.service_host, n_tasks=2,
                                      transfer_protocol="bittorrent")
        genebase_attr = app._shared_attribute(app.shared_inputs[1])
        assert genebase_attr.affinity == "Sequence"
        assert genebase_attr.protocol == "bittorrent"
        assert genebase_attr.relative_lifetime == "Collector"
        application_attr = app._shared_attribute(app.shared_inputs[0])
        assert application_attr.replica == -1
        task_attr = app._task_attribute()
        assert task_attr.fault_tolerance
        assert task_attr.protocol == "http"
        result_attr = app._result_attribute()
        assert result_attr.affinity == "Collector"

    def test_grid5000_blast_split_across_clusters(self, env):
        topo = grid5000_testbed(env, total_nodes=8)
        registry = default_registry(env, topo.network, bittorrent_mode="fluid")
        runtime = BitDewEnvironment(topo, registry=registry, sync_period_s=5.0,
                                    max_data_schedule=4)
        params = BlastParameters(genebase_mb=32, execution_reference_s=20,
                                 unzip_reference_s=2)
        app = build_blast_application(runtime, topo.service_host, n_tasks=8,
                                      transfer_protocol="bittorrent",
                                      parameters=params)
        app.register_workers()
        report = app.run(deadline_s=4000, poll_s=10)
        assert report.results_collected == 8
        clusters = set(report.breakdown_by_cluster())
        assert len(clusters) >= 2
