"""Fixture: one DET001 violation (wall-clock read)."""

import time


def stamp() -> float:
    return time.time()  # SEED:DET001
