"""Fixture: a pragma that suppresses nothing is itself flagged (LINT002)."""


def quiet() -> int:
    return 1  # detlint: ignore[DET001] — fixture: nothing to suppress here
