"""Fixture: one DET002 violation (ambient random import)."""

import random  # SEED:DET002


def draw() -> float:
    return random.uniform(0.0, 1.0)
