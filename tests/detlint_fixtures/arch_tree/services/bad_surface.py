"""Fixture: reaching past the pinned kernel surface (ARCH002)."""

from repro.sim.kernel import _PENDING  # SEED:ARCH002-import


def sneak(env):
    return env._schedule  # SEED:ARCH002-attr


_ = _PENDING
