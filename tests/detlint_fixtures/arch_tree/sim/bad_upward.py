"""Fixture: an upward import edge sim -> services (ARCH001)."""

from repro.services.container import ServiceContainer  # SEED:ARCH001

_ = ServiceContainer
