"""Fixture: a pragma without a reason is malformed (LINT001)."""

import time


def stamp() -> float:
    return time.time()  # detlint: ignore[DET001]
