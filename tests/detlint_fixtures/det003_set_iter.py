"""Fixture: one DET003 violation (unsorted set iteration)."""

hosts = {"alpha", "beta", "gamma"}


def first_labels() -> str:
    out = ""
    for name in hosts:  # SEED:DET003
        out += name[0]
    return out
