"""Fixture: one DET005 violation (fresh entropy as an identifier)."""

import uuid


def make_uid() -> str:
    return str(uuid.uuid4())  # SEED:DET005
