"""Fixture: a well-formed pragma suppresses the finding on its line."""

import time


def stamp() -> float:
    return time.time()  # detlint: ignore[DET001] — fixture: pragma round-trip
