"""Fixture: one DET004 violation (unsorted dict iteration, hot module)."""

table = {"b": 2, "a": 1}


def render() -> str:
    parts = []
    for key, value in table.items():  # SEED:DET004
        parts.append(f"{key}={value}")
    return ",".join(parts)
