"""Unit tests for the Data Scheduler (Algorithm 1) and the failure detector."""

import pytest

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.services.data_scheduler import DataSchedulerService
from repro.services.heartbeat import FailureDetector
from repro.storage.database import Database


@pytest.fixture
def detector(env):
    return FailureDetector(env, heartbeat_period_s=1.0, timeout_multiplier=3.0)


@pytest.fixture
def scheduler(env, detector):
    return DataSchedulerService(env, database=Database(env, copy_objects=False),
                                failure_detector=detector, max_data_schedule=16)


def sync(scheduler, host, cached=(), reservoir=True):
    return scheduler.compute_schedule(host, set(cached), reservoir=reservoir)


class TestFailureDetector:
    def test_heartbeat_and_liveness(self, env, detector):
        detector.heartbeat("h1")
        assert detector.is_alive("h1")
        assert detector.known_hosts() == ["h1"]
        assert not detector.is_alive("unknown")

    def test_timeout_declares_dead(self, env, detector):
        dead = []
        detector.on_failure(dead.append)
        detector.heartbeat("h1")
        env._now = 4.0   # advance beyond 3 x heartbeat
        assert detector.sweep() == ["h1"]
        assert dead == ["h1"]
        assert not detector.is_alive("h1")
        assert detector.liveness("h1").declared_dead_at == 4.0

    def test_recovery_callback(self, env, detector):
        recovered = []
        detector.on_recovery(recovered.append)
        detector.heartbeat("h1")
        env._now = 10.0
        detector.sweep()
        detector.heartbeat("h1")
        assert recovered == ["h1"]
        assert detector.is_alive("h1")

    def test_sweep_loop_process(self, env, detector):
        dead = []
        detector.on_failure(dead.append)
        detector.heartbeat("h1")
        detector.start()
        detector.start()   # idempotent
        env.run(until=10)
        assert dead == ["h1"]
        detector.stop()

    def test_forget(self, env, detector):
        detector.heartbeat("h1")
        detector.forget("h1")
        assert detector.known_hosts() == []

    def test_validation(self, env):
        with pytest.raises(ValueError):
            FailureDetector(env, heartbeat_period_s=0)
        with pytest.raises(ValueError):
            FailureDetector(env, timeout_multiplier=0)

    def test_timeout_property(self, env, detector):
        assert detector.timeout_s == pytest.approx(3.0)


class TestSchedulingReplica:
    def test_replica_assigned_up_to_count(self, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=2))
        first = sync(scheduler, "h1")
        assert data.uid in first.to_download
        second = sync(scheduler, "h2")
        assert data.uid in second.to_download
        third = sync(scheduler, "h3")
        assert data.uid not in third.to_download
        assert scheduler.owners_of(data.uid) == {"h1", "h2"}

    def test_replicate_to_all(self, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=-1))
        for host in ("h1", "h2", "h3", "h4", "h5"):
            result = sync(scheduler, host)
            assert data.uid in result.to_download

    def test_cached_data_is_kept_not_redownloaded(self, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1))
        sync(scheduler, "h1")
        again = sync(scheduler, "h1", cached={data.uid})
        assert data.uid not in again.to_download
        assert data.uid not in again.to_delete
        assert any(d.uid == data.uid for d, _ in again.assigned)

    def test_unmanaged_cached_data_is_deleted(self, scheduler):
        result = sync(scheduler, "h1", cached={"stale-uid"})
        assert result.to_delete == ["stale-uid"]

    def test_max_data_schedule_limits_new_assignments(self, env, detector):
        scheduler = DataSchedulerService(env, failure_detector=detector,
                                         max_data_schedule=3)
        for i in range(10):
            scheduler.schedule(Data(name=f"d{i}"), Attribute(name="a", replica=1))
        result = sync(scheduler, "h1")
        assert len(result.to_download) == 3
        result2 = sync(scheduler, "h1", cached=set(result.to_download))
        assert len(result2.to_download) == 3

    def test_client_hosts_get_no_replica_placement(self, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=5))
        result = sync(scheduler, "client", reservoir=False)
        assert result.to_download == []
        result = sync(scheduler, "reservoir", reservoir=True)
        assert data.uid in result.to_download

    def test_unschedule_makes_data_obsolete(self, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1))
        sync(scheduler, "h1")
        assert scheduler.unschedule(data.uid)
        result = sync(scheduler, "h1", cached={data.uid})
        assert result.to_delete == [data.uid]
        assert not scheduler.unschedule(data.uid)

    def test_pin_counts_as_owner(self, scheduler):
        data = Data(name="d")
        scheduler.pin(data, "master", Attribute(name="a", replica=1))
        assert scheduler.owners_of(data.uid) == {"master"}
        # Replica already satisfied by the pinned owner.
        result = sync(scheduler, "h1")
        assert data.uid not in result.to_download


class TestSchedulingAffinity:
    def test_affinity_follows_reference_data(self, scheduler):
        sequence = Data(name="sequence-1")
        genebase = Data(name="genebase")
        scheduler.schedule(sequence, Attribute(name="Sequence", replica=1))
        scheduler.schedule(genebase, Attribute(name="Genebase", replica=1,
                                               affinity="Sequence"))
        # Host without the sequence: genebase must not be placed by replica.
        empty = sync(scheduler, "h-empty")
        downloaded = set(empty.to_download)
        assert genebase.uid not in downloaded or sequence.uid in downloaded

        # A host holding the sequence gets the genebase.
        result = sync(scheduler, "h1", cached={sequence.uid})
        assert genebase.uid in result.to_download

    def test_affinity_stronger_than_replica(self, scheduler):
        """A datum with affinity is replicated wherever the reference is,
        regardless of its own replica value (paper §3.2)."""
        reference = Data(name="ref")
        dependent = Data(name="dep")
        scheduler.schedule(reference, Attribute(name="Ref", replica=-1))
        scheduler.schedule(dependent, Attribute(name="Dep", replica=1,
                                                affinity="Ref"))
        for host in ("h1", "h2", "h3"):
            first = sync(scheduler, host)
            assert reference.uid in first.to_download
            follow_up = sync(scheduler, host, cached={reference.uid})
            assert dependent.uid in follow_up.to_download
        assert len(scheduler.owners_of(dependent.uid)) == 3

    def test_affinity_by_data_name_and_uid(self, scheduler):
        collector = Data(name="collector")
        result_data = Data(name="result-1")
        by_uid = Data(name="result-2")
        scheduler.pin(collector, "master", Attribute(name="Collector"))
        scheduler.schedule(result_data, Attribute(name="Result", affinity="collector"))
        scheduler.schedule(by_uid, Attribute(name="Result2", affinity=collector.uid))
        result = sync(scheduler, "master", cached={collector.uid}, reservoir=False)
        assert result_data.uid in result.to_download
        assert by_uid.uid in result.to_download

    def test_affinity_applies_to_client_hosts(self, scheduler):
        """Clients receive data through affinity (results to the master)."""
        collector = Data(name="collector")
        result_data = Data(name="result-1")
        scheduler.pin(collector, "master", Attribute(name="Collector"))
        scheduler.schedule(result_data, Attribute(name="Result", affinity="Collector"))
        result = sync(scheduler, "master", cached={collector.uid}, reservoir=False)
        assert result_data.uid in result.to_download


class TestSchedulingLifetime:
    def test_absolute_lifetime_expiry(self, env, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1,
                                           absolute_lifetime=100.0))
        sync(scheduler, "h1")
        env._now = 50.0
        keep = sync(scheduler, "h1", cached={data.uid})
        assert data.uid not in keep.to_delete
        env._now = 150.0
        drop = sync(scheduler, "h1", cached={data.uid})
        assert data.uid in drop.to_delete

    def test_relative_lifetime_follows_reference(self, scheduler):
        collector = Data(name="collector")
        dependent = Data(name="dep")
        scheduler.pin(collector, "master", Attribute(name="Collector"))
        scheduler.schedule(dependent, Attribute(name="Dep", replica=1,
                                                relative_lifetime="Collector"))
        result = sync(scheduler, "h1")
        assert dependent.uid in result.to_download
        # Deleting the collector obsoletes the dependent datum.
        scheduler.unschedule(collector.uid)
        drop = sync(scheduler, "h1", cached={dependent.uid})
        assert dependent.uid in drop.to_delete

    def test_expire_lifetimes_transitive(self, env, scheduler):
        a = Data(name="a")
        b = Data(name="b")
        c = Data(name="c")
        scheduler.schedule(a, Attribute(name="A", absolute_lifetime=10))
        scheduler.schedule(b, Attribute(name="B", relative_lifetime="A"))
        scheduler.schedule(c, Attribute(name="C", relative_lifetime="B"))
        env._now = 20.0
        dropped = scheduler.expire_lifetimes()
        assert set(dropped) == {a.uid, b.uid, c.uid}
        assert scheduler.managed_count == 0

    def test_expired_data_not_assigned(self, env, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=3,
                                           absolute_lifetime=10))
        env._now = 20.0
        result = sync(scheduler, "h1")
        assert data.uid not in result.to_download


class TestFaultTolerance:
    def test_fault_tolerant_data_rescheduled_after_owner_failure(self, env, scheduler,
                                                                 detector):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=2, fault_tolerance=True))
        for host in ("h1", "h2"):
            detector.heartbeat(host)
            sync(scheduler, host)
        assert scheduler.owners_of(data.uid) == {"h1", "h2"}
        # h1 stops heartbeating and is declared dead.
        env._now = 10.0
        detector.heartbeat("h2")
        detector.sweep()
        assert scheduler.owners_of(data.uid) == {"h2"}
        assert scheduler.repairs_triggered == 1
        assert scheduler.missing_replicas() == {data.uid: 1}
        # A fresh host picks up the missing replica.
        result = sync(scheduler, "h3")
        assert data.uid in result.to_download

    def test_non_fault_tolerant_data_not_repaired(self, env, scheduler, detector):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=2, fault_tolerance=False))
        for host in ("h1", "h2"):
            detector.heartbeat(host)
            sync(scheduler, host)
        env._now = 10.0
        detector.heartbeat("h2")
        detector.sweep()
        # The dead owner stays registered: the replica is simply unavailable.
        assert scheduler.owners_of(data.uid) == {"h1", "h2"}
        result = sync(scheduler, "h3")
        assert data.uid not in result.to_download

    def test_heartbeat_service_method(self, scheduler, detector):
        assert scheduler.heartbeat("h9")
        assert detector.is_alive("h9")

    def test_release_ownership(self, scheduler):
        data = Data(name="d")
        scheduler.pin(data, "h1", Attribute(name="a"))
        scheduler.release_ownership("h1", data.uid)
        assert scheduler.owners_of(data.uid) == set()


class TestSynchronizeGenerator:
    def test_synchronize_pays_database_cost_and_heartbeats(self, env, detector, drive):
        from repro.storage.database import EmbeddedSQLEngine
        db = Database(env, engine=EmbeddedSQLEngine(operation_cost_s=0.05,
                                                    connection_cost_s=0.0),
                      copy_objects=False)
        scheduler = DataSchedulerService(env, database=db, failure_detector=detector)
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1))
        result = drive(env, scheduler.synchronize("h1", set()))
        assert data.uid in result.to_download
        assert env.now == pytest.approx(0.05)
        assert detector.is_alive("h1")
        assert scheduler.sync_count == 1

    def test_synchronize_without_database(self, env, drive):
        scheduler = DataSchedulerService(env)
        data = Data(name="d")
        scheduler.schedule(data)
        result = drive(env, scheduler.synchronize("h1", set()))
        assert data.uid in result.to_download


class TestMaxNewLimit:
    def test_max_new_zero_assigns_nothing(self, scheduler):
        """Regression: ``max_new=0`` used to assign one datum anyway because
        the limit was only checked *after* an assignment."""
        for i in range(5):
            scheduler.schedule(Data(name=f"d{i}"), Attribute(name="a", replica=1))
        result = scheduler.compute_schedule("h1", set(), max_new=0)
        assert result.to_download == []
        assert result.assigned == []
        assert scheduler.assignments == 0
        # The data is still assignable on a later, unrestricted sync.
        follow_up = scheduler.compute_schedule("h1", set())
        assert len(follow_up.to_download) == 5

    def test_max_new_zero_still_validates_cache(self, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1))
        scheduler.compute_schedule("h1", set())
        result = scheduler.compute_schedule("h1", {data.uid, "stale"}, max_new=0)
        assert result.to_delete == ["stale"]
        assert any(d.uid == data.uid for d, _ in result.assigned)


class TestIndexedScanBehaviour:
    def test_no_theta_scan_when_nothing_assignable(self, env):
        """With every replica target satisfied, a synchronisation examines
        zero Θ entries no matter how much data is under management."""
        scheduler = DataSchedulerService(env, max_data_schedule=16)
        for i in range(500):
            data = Data(name=f"d{i}")
            scheduler.schedule(data, Attribute(name="a", replica=1))
            scheduler.confirm_ownership("holder", data.uid)
        scheduler.entries_examined = 0
        result = scheduler.compute_schedule("fresh-host", set())
        assert result.to_download == []
        assert scheduler.entries_examined == 0
        assert scheduler.managed_count == 500

    def test_examined_entries_proportional_to_assignable(self, env):
        scheduler = DataSchedulerService(env, max_data_schedule=16)
        for i in range(200):
            data = Data(name=f"sat{i}")
            scheduler.schedule(data, Attribute(name="a", replica=1))
            scheduler.confirm_ownership("holder", data.uid)
        needy = Data(name="needy")
        scheduler.schedule(needy, Attribute(name="b", replica=3))
        scheduler.entries_examined = 0
        result = scheduler.compute_schedule("fresh-host", set())
        assert result.to_download == [needy.uid]
        assert scheduler.entries_examined == 1

    def test_release_ownership_reenters_deficit(self, env):
        scheduler = DataSchedulerService(env)
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1))
        scheduler.compute_schedule("h1", set())
        assert scheduler.compute_schedule("h2", set()).to_download == []
        scheduler.release_ownership("h1", data.uid)
        assert scheduler.compute_schedule("h2", set()).to_download == [data.uid]

    def test_owner_index_survives_unschedule(self, env, detector):
        scheduler = DataSchedulerService(env, failure_detector=detector)
        kept = Data(name="kept")
        dropped = Data(name="dropped")
        scheduler.schedule(kept, Attribute(name="a", replica=2,
                                           fault_tolerance=True))
        scheduler.schedule(dropped, Attribute(name="b", replica=2,
                                              fault_tolerance=True))
        detector.heartbeat("h1")
        sync(scheduler, "h1")
        scheduler.unschedule(dropped.uid)
        env._now = 10.0
        detector.sweep()
        # Only the still-managed datum is repaired; no stale index entries.
        assert scheduler.owners_of(kept.uid) == set()
        assert scheduler.repairs_triggered == 1


class TestLifetimeIndexes:
    def test_expiry_heap_ignores_rescheduled_attribute(self, env, scheduler):
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1,
                                           absolute_lifetime=10.0))
        # Replacing the attribute invalidates the original expiry row.
        scheduler.schedule(data, Attribute(name="a2", replica=1,
                                           absolute_lifetime=1000.0))
        env._now = 50.0
        assert scheduler.expire_lifetimes() == []
        assert scheduler.managed_count == 1
        env._now = 2000.0
        assert scheduler.expire_lifetimes() == [data.uid]

    def test_unresolvable_reference_dropped(self, env, scheduler):
        orphan = Data(name="orphan")
        scheduler.schedule(orphan, Attribute(name="O",
                                             relative_lifetime="never-existed"))
        assert scheduler.expire_lifetimes() == [orphan.uid]

    def test_late_provider_resurrects_reference(self, env, scheduler):
        dependent = Data(name="dep")
        scheduler.schedule(dependent, Attribute(name="D",
                                                relative_lifetime="Anchor"))
        anchor = Data(name="anchor")
        scheduler.schedule(anchor, Attribute(name="Anchor", replica=1))
        assert scheduler.expire_lifetimes() == []
        scheduler.unschedule(anchor.uid)
        assert scheduler.expire_lifetimes() == [dependent.uid]

    def test_transitive_expiry_through_names_and_attributes(self, env, scheduler):
        a = Data(name="a")
        b = Data(name="b")
        c = Data(name="c")
        d = Data(name="d")
        scheduler.schedule(a, Attribute(name="A", absolute_lifetime=10))
        scheduler.schedule(b, Attribute(name="B", relative_lifetime="a"))
        scheduler.schedule(c, Attribute(name="C", relative_lifetime="B"))
        scheduler.schedule(d, Attribute(name="D", relative_lifetime=c.uid))
        env._now = 20.0
        dropped = scheduler.expire_lifetimes()
        assert set(dropped) == {a.uid, b.uid, c.uid, d.uid}
        assert scheduler.managed_count == 0


class TestReregistrationStaleness:
    def test_reschedule_after_unschedule_ignores_old_expiry_row(self, env, scheduler):
        """Regression: a heap row from a previous incarnation of the same uid
        must not expire the re-registered entry (a fresh entry restarts its
        generation, so the row's seq is what identifies the incarnation)."""
        data = Data(name="d")
        scheduler.schedule(data, Attribute(name="a", replica=1,
                                           absolute_lifetime=5.0))
        scheduler.unschedule(data.uid)
        scheduler.schedule(data, Attribute(name="b", replica=1))
        env._now = 100.0
        assert scheduler.expire_lifetimes() == []
        assert scheduler.managed_count == 1

    def test_reschedule_after_unschedule_keeps_theta_order(self, env):
        """Regression: a stale deficit-heap row carrying the old seq must not
        let a re-registered datum jump the Θ-insertion-order queue."""
        scheduler = DataSchedulerService(env, max_data_schedule=16)
        a = Data(name="a")
        b = Data(name="b")
        scheduler.schedule(a, Attribute(name="A", replica=1))
        scheduler.unschedule(a.uid)
        scheduler.schedule(b, Attribute(name="B", replica=1))
        scheduler.schedule(a, Attribute(name="A", replica=1))
        result = scheduler.compute_schedule("h1", set(), max_new=1)
        # b was registered before a's second incarnation: b goes first.
        assert result.to_download == [b.uid]


class TestDeficitEviction:
    def test_expired_deficit_entries_examined_at_most_once(self, env):
        """Lifetime-dead data leaves the deficit on first examination instead
        of being re-examined by every synchronisation forever."""
        scheduler = DataSchedulerService(env, max_data_schedule=16)
        for i in range(50):
            scheduler.schedule(Data(name=f"d{i}"),
                               Attribute(name="a", replica=1,
                                         absolute_lifetime=10.0))
        env._now = 100.0
        scheduler.compute_schedule("h1", set())
        first_pass = scheduler.entries_examined
        assert first_pass <= 50
        scheduler.compute_schedule("h2", set())
        scheduler.compute_schedule("h3", set())
        assert scheduler.entries_examined == first_pass

    def test_dangling_reference_reenters_deficit_when_provider_appears(self, env):
        scheduler = DataSchedulerService(env)
        dep = Data(name="dep")
        scheduler.schedule(dep, Attribute(name="D", replica=1,
                                          relative_lifetime="Anchor"))
        # Examined once while dangling: evicted, then ignored.
        assert scheduler.compute_schedule("h1", set()).to_download == []
        assert scheduler.compute_schedule("h2", set()).to_download == []
        # A provider appears: the dependent is assignable again.
        anchor = Data(name="anchor")
        scheduler.schedule(anchor, Attribute(name="Anchor", replica=1))
        result = scheduler.compute_schedule("h3", set())
        assert set(result.to_download) == {dep.uid, anchor.uid}
