"""Tests for the experiment harness and reporting helpers (small scales)."""

import pytest

from repro.bench.fault import run_fig4
from repro.bench.micro import run_table2_cell, run_table3, table1_testbed
from repro.bench.reporting import (
    ShapeCheckFailure,
    format_table,
    geometric_mean,
    shape_check,
)
from repro.bench.transfer import run_distribution, run_fig3bc, run_ftp_alone


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"name": "a", "value": 1.234}, {"name": "bb", "value": 10.0}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.23" in text and "10.00" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 5]) == pytest.approx(5.0)

    def test_shape_check_pass_and_fail(self):
        checks = shape_check("unit")
        checks.is_true("ok", True)
        checks.ratio_at_least("big enough", 3.0, 2.0)
        checks.ratio_at_most("small enough", 0.5, 1.0)
        checks.within("in range", 5.0, 0.0, 10.0)
        checks.verify()

        failing = shape_check("unit")
        failing.is_true("nope", False)
        with pytest.raises(ShapeCheckFailure, match="nope"):
            failing.verify()


class TestMicroHarness:
    def test_table1_matches_paper_rows(self):
        rows = table1_testbed()
        assert len(rows) == 4
        by_cluster = {r["cluster"]: r for r in rows}
        assert by_cluster["gdx"]["cpus"] == 312
        assert by_cluster["grelon"]["cpu_type"].startswith("Intel Xeon")
        assert by_cluster["sagittaire"]["location"] == "Lyon"

    def test_table2_cell_orderings(self):
        kwargs = dict(n_creations=300)
        hsql_pooled = run_table2_cell("hsqldb", True, "local", **kwargs)
        hsql_plain = run_table2_cell("hsqldb", False, "local", **kwargs)
        mysql_plain = run_table2_cell("mysql", False, "local", **kwargs)
        remote = run_table2_cell("hsqldb", True, "rmi remote", **kwargs)
        assert hsql_pooled > hsql_plain > mysql_plain
        assert hsql_pooled > remote > 1.0          # >1k creations/sec remote
        assert 2.0 < hsql_pooled < 8.0             # thousands of dc/sec band

    def test_table2_cell_validation(self):
        with pytest.raises(ValueError):
            run_table2_cell(engine="oracle")
        with pytest.raises(ValueError):
            run_table2_cell(channel="carrier pigeon")
        with pytest.raises(ValueError):
            run_table2_cell(n_creations=0)

    def test_table3_ddc_slower_than_dc(self):
        result = run_table3(n_nodes=10, pairs_per_node=30)
        assert result["ddc_total_s"] > result["dc_total_s"]
        assert result["slowdown_ratio"] > 3.0
        assert result["total_pairs"] == 300


class TestTransferHarness:
    def test_ftp_alone_scales_linearly_with_nodes(self):
        small = run_ftp_alone(20, 5)
        big = run_ftp_alone(20, 20)
        assert big["completion_s"] > 3.0 * small["completion_s"]

    def test_ftp_alone_validation(self):
        with pytest.raises(ValueError):
            run_ftp_alone(0, 5)

    def test_bitdew_distribution_has_positive_overhead(self):
        baseline = run_ftp_alone(20, 5)
        bitdew = run_distribution("ftp", 20, 5)
        assert bitdew["completed_nodes"] == 5
        assert bitdew["completion_s"] >= baseline["completion_s"]
        assert bitdew["monitor_messages"] > 0

    def test_bittorrent_beats_ftp_at_scale(self):
        ftp = run_distribution("ftp", 100, 30)
        bt = run_distribution("bittorrent", 100, 30)
        assert bt["completion_s"] < ftp["completion_s"]

    def test_scheduler_driven_distribution(self):
        result = run_distribution("ftp", 10, 3, use_scheduler=True,
                                  sync_period_s=1.0)
        assert result["completed_nodes"] == 3

    def test_fig3bc_rows_have_expected_shape(self):
        rows = run_fig3bc(sizes_mb=(10,), node_counts=(5,))
        assert len(rows) == 1
        row = rows[0]
        assert row["overhead_s"] >= 0
        assert row["bitdew_ftp_s"] >= row["ftp_alone_s"]


class TestFaultHarness:
    def test_fig4_scenario_small(self):
        result = run_fig4(size_mb=2.0, n_initial=3, n_spare=3, replica=3,
                          crash_interval_s=15.0, settle_s=40.0, horizon_s=150.0)
        assert result["crashes"] == 3
        assert result["joins"] == 3
        assert result["live_replicas"] == 3
        replacements = result["replacement_rows"]
        assert replacements, "replacement nodes must have received the datum"
        for row in replacements:
            # Wait is dominated by the 3 s failure-detection timeout.
            assert row["wait_s"] >= result["timeout_s"] - 1.0
            assert row["wait_s"] <= result["timeout_s"] + 5.0
            assert row["download_s"] > 0
            assert row["bandwidth_kbps"] > 0

    def test_fig4_rejects_oversized_platform(self):
        with pytest.raises(ValueError):
            run_fig4(n_initial=8, n_spare=8)
