"""The batched Algorithm 1 oracle: ``compute_schedule_batch`` == N sequential calls.

``DataSchedulerService.compute_schedule_batch`` promises *exactly* the
results and post-state of the sequential per-host loop — that promise is
what lets the cohort workloads and the fabric router batch without
changing any simulated quantity.  These tests pin it with a hypothesis
oracle: build two schedulers from the same randomly drawn world, run the
cohort sequentially on one and batched on the other, and require every
observable to match — per-host schedules, counters, owner state, the
replica-deficit heap's live content, and the mutation-hook call sequence.

The drawn worlds deliberately cross the batch's regime boundary (affinity
attributes, lifetimes, ``reservoir=False``, non-positive limits force the
documented sequential fallback; disjoint unit-limit cohorts hit the numpy
prefix-sum fill; everything else the shared-candidate walk) so all three
code paths face the oracle.
"""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.services.data_scheduler import DataSchedulerService
from repro.sim.kernel import Environment

pytest.importorskip("numpy")

common_settings = settings(max_examples=60, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# World construction
# ---------------------------------------------------------------------------

def _attribute(index, replica, affinity, lifetime):
    return Attribute(name=f"attr{index}", replica=replica,
                     affinity=affinity,
                     absolute_lifetime=lifetime)


@st.composite
def worlds(draw):
    """One drawn scheduler world plus the cohort to synchronise."""
    n_data = draw(st.integers(min_value=0, max_value=10))
    specs = []
    for i in range(n_data):
        replica = draw(st.sampled_from([-1, 1, 1, 2, 3]))
        # Affinity references an earlier datum's name (or dangles); any
        # affinity in Θ forces the batch onto its sequential fallback.
        affinity = None
        if draw(st.booleans()) and draw(st.integers(0, 4)) == 0:
            affinity = f"d{draw(st.integers(0, max(0, n_data - 1)))}"
        lifetime = (1e6 if draw(st.integers(0, 9)) == 0 else None)
        specs.append((replica, affinity, lifetime))
    n_warm = draw(st.integers(min_value=0, max_value=3))
    warm_hosts = [f"w{i}" for i in range(n_warm)]
    n_cohort = draw(st.integers(min_value=0, max_value=6))
    # Duplicate host names (a host syncing twice in one batch) must fall
    # off the vectorized path and still match the sequential loop.
    cohort = [f"h{draw(st.integers(0, n_cohort))}" for _ in range(n_cohort)]
    cache_picks = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=max(0, n_data)),
                 max_size=4),
        min_size=n_cohort, max_size=n_cohort))
    reservoir = draw(st.integers(0, 9)) > 0
    max_new = draw(st.one_of(
        st.none(),
        st.integers(min_value=0, max_value=3),
        st.lists(st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
                 min_size=n_cohort, max_size=n_cohort)))
    fail_host = draw(st.one_of(st.none(), st.sampled_from(warm_hosts))
                     if warm_hosts else st.none())
    return specs, warm_hosts, cohort, cache_picks, reservoir, max_new, fail_host


def _build(env, specs, warm_hosts, fail_host, datas, hook_log):
    """One scheduler holding the drawn Θ, warmed by sequential syncs."""
    scheduler = DataSchedulerService(env, max_data_schedule=2)
    scheduler._mutation_hook = hook_log.append
    for i, (replica, affinity, lifetime) in enumerate(specs):
        scheduler.schedule(datas[i], _attribute(i, replica, affinity,
                                                lifetime))
    for host in warm_hosts:
        scheduler.compute_schedule(host, set())
    if fail_host is not None:
        # A failure-detector repair between the warm-up and the cohort:
        # owner lists shrink, uids re-enter the deficit.
        scheduler._on_host_failure(fail_host)
    return scheduler


def _live_heap(scheduler):
    """The deficit heap's *live* rows (the only part behaviour reads)."""
    return sorted(row for row in scheduler._deficit_heap
                  if row[1] in scheduler._replica_deficit
                  and scheduler._entries[row[1]].seq == row[0])


def _result_tuple(result):
    return ([d.uid for d, _a in result.assigned], result.to_delete,
            result.to_download, result.time, result.host_name)


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------

@common_settings
@given(worlds())
def test_batch_equals_sequential_everywhere(world):
    specs, warm_hosts, cohort, cache_picks, reservoir, max_new, fail = world
    env = Environment()
    datas = [Data(name=f"d{i}") for i in range(len(specs))]
    known = [d.uid for d in datas]
    caches = [{known[p] if p < len(known) else f"ghost-{p}"
               for p in picks}
              for picks in cache_picks]
    hooks_seq, hooks_batch = [], []
    seq = _build(env, specs, warm_hosts, fail, datas, hooks_seq)
    batch = _build(env, specs, warm_hosts, fail, datas, hooks_batch)
    assert hooks_seq == hooks_batch
    hooks_seq.clear(), hooks_batch.clear()

    limits = (max_new if not isinstance(max_new, list)
              else None)  # scalar (or None) per-host argument
    expected = [
        seq.compute_schedule(
            host, set(cache), reservoir=reservoir,
            max_new=limits if not isinstance(max_new, list) else max_new[k])
        for k, (host, cache) in enumerate(zip(cohort, caches))]
    actual = batch.compute_schedule_batch(cohort, caches,
                                          reservoir=reservoir,
                                          max_new=max_new)

    assert [_result_tuple(r) for r in actual] \
        == [_result_tuple(r) for r in expected]
    # Counter deltas, owner state, deficit, caches and the hook sequence
    # must all agree — the batch mutates the scheduler exactly like the
    # loop does.
    assert batch.assignments == seq.assignments
    assert batch.entries_examined == seq.entries_examined
    assert batch.sync_count == seq.sync_count
    for uid in known:
        if uid in seq._entries:
            assert batch._entries[uid].owners == seq._entries[uid].owners
    assert batch._owner_index == seq._owner_index
    assert batch._replica_deficit == seq._replica_deficit
    assert _live_heap(batch) == _live_heap(seq)
    assert batch._host_caches == seq._host_caches
    assert hooks_batch == hooks_seq


# ---------------------------------------------------------------------------
# Per-host limits (the router's rotating budgets)
# ---------------------------------------------------------------------------

class TestPerHostLimits:
    def _scheduler(self, n=6, replica=1):
        env = Environment()
        scheduler = DataSchedulerService(env, max_data_schedule=4)
        datas = [Data(name=f"d{i}") for i in range(n)]
        for i, data in enumerate(datas):
            scheduler.schedule(data, Attribute(name=f"a{i}", replica=replica))
        return scheduler, datas

    def test_mixed_limits_walk_per_host(self):
        scheduler, _datas = self._scheduler(n=6)
        hosts = ["h0", "h1", "h2", "h3"]
        results = scheduler.compute_schedule_batch(
            hosts, [set() for _ in hosts], max_new=[2, 0, None, 1])
        got = [len(r.to_download) for r in results]
        # None takes the scheduler default (4): h0 consumes 2 of the 6
        # replica-1 candidates, h2 drains the remaining 4, h3 finds none.
        assert got == [2, 0, 4, 0]
        assert scheduler.assignments == 6

    def test_uniform_sequence_collapses_to_scalar(self):
        one, _ = self._scheduler(n=4)
        other, _ = self._scheduler(n=4)
        hosts = ["h0", "h1"]
        a = one.compute_schedule_batch(hosts, [set(), set()], max_new=[1, 1])
        b = other.compute_schedule_batch(hosts, [set(), set()], max_new=1)
        assert [len(r.to_download) for r in a] \
            == [len(r.to_download) for r in b] == [1, 1]

    def test_all_nonpositive_limits_assign_nothing(self):
        scheduler, _ = self._scheduler(n=3)
        results = scheduler.compute_schedule_batch(
            ["h0", "h1"], [set(), set()], max_new=[0, 0])
        assert all(r.to_download == [] for r in results)
        assert scheduler.assignments == 0

    def test_empty_cohort(self):
        scheduler, _ = self._scheduler(n=2)
        assert scheduler.compute_schedule_batch([], [], max_new=[]) == []
        assert scheduler.compute_schedule_batch([], []) == []
