"""The service fabric: shard ring, routers, facades, detector fixes, failover."""

import random

import pytest

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment
from repro.net.rpc import RpcError
from repro.net.topology import cluster_topology
from repro.services.fabric import ServiceFabric
from repro.services.heartbeat import FailureDetector
from repro.services.router import FabricRouter, ShardRing, StaticRouter
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent


def _make_data(i, size_mb=0.01):
    content = FileContent.from_seed(f"fab-test-{i:04d}", size_mb)
    return Data.from_content(content), content


class TestShardRing:
    def test_mapping_is_deterministic_and_in_range(self):
        ring = ShardRing(4, label="dc")
        keys = [f"key-{i}" for i in range(500)]
        first = [ring.shard_for(k) for k in keys]
        second = [ring.shard_for(k) for k in keys]
        assert first == second
        assert all(0 <= s < 4 for s in first)

    def test_single_shard_maps_everything_to_zero(self):
        ring = ShardRing(1)
        assert {ring.shard_for(f"k{i}") for i in range(50)} == {0}

    def test_partition_agrees_with_shard_for(self):
        ring = ShardRing(3, label="ds")
        keys = {f"uid-{i}" for i in range(200)}
        parts = ring.partition(keys)
        assert set().union(*parts.values()) == keys
        assert sum(len(v) for v in parts.values()) == len(keys)
        for shard, members in parts.items():
            assert all(ring.shard_for(k) == shard for k in members)

    def test_virtual_nodes_keep_shards_reasonably_balanced(self):
        ring = ShardRing(4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[ring.shard_for(f"load-{i}")] += 1
        # With 16 vnodes per shard no shard should own a degenerate slice.
        assert min(counts) >= 2000 * 0.05
        assert max(counts) <= 2000 * 0.60

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRing(0)
        with pytest.raises(ValueError):
            ShardRing(2, vnodes=0)


class _ReferenceDetector:
    """The seed implementation's linear-scan sweep, for equivalence checks."""

    def __init__(self, env, timeout_s):
        self.env = env
        self.timeout_s = timeout_s
        self.hosts = {}

    def heartbeat(self, name):
        entry = self.hosts.get(name)
        if entry is None:
            self.hosts[name] = {"last": self.env.now, "alive": True}
            return
        entry["last"] = self.env.now
        if not entry["alive"]:
            entry["alive"] = True

    def sweep(self):
        now = self.env.now
        newly_dead = []
        for name, entry in self.hosts.items():
            if entry["alive"] and now - entry["last"] > self.timeout_s:
                entry["alive"] = False
                newly_dead.append(name)
        return newly_dead


class TestFailureDetectorExpiryHeap:
    def test_sweep_equivalent_to_linear_scan_under_random_schedule(self):
        env = Environment()
        detector = FailureDetector(env, heartbeat_period_s=1.0,
                                   timeout_multiplier=3.0)
        reference = _ReferenceDetector(env, detector.timeout_s)
        rng = random.Random(1234)
        names = [f"h{i}" for i in range(30)]

        def driver():
            for _step in range(120):
                for name in names:
                    if rng.random() < 0.35:
                        detector.heartbeat(name)
                        reference.heartbeat(name)
                yield env.timeout(0.4)
                assert detector.sweep() == reference.sweep()
                for name in names:
                    assert detector.is_alive(name) == \
                        reference.hosts.get(name, {}).get("alive", False)

        env.process(driver())
        env.run(until=env.timeout(120 * 0.4 + 1.0))

    def test_revival_rearms_the_heap(self):
        env = Environment()
        detector = FailureDetector(env, heartbeat_period_s=1.0,
                                   timeout_multiplier=2.0)
        recovered = []
        detector.on_recovery(recovered.append)

        def driver():
            detector.heartbeat("a")
            yield env.timeout(3.0)
            assert detector.sweep() == ["a"]
            detector.heartbeat("a")           # revival
            assert recovered == ["a"]
            assert detector.is_alive("a")
            yield env.timeout(3.0)
            assert detector.sweep() == ["a"]  # dies again via the new row
        env.process(driver())
        env.run(until=env.timeout(10.0))

    def test_forget_invalidates_pending_heap_rows(self):
        env = Environment()
        detector = FailureDetector(env, heartbeat_period_s=1.0,
                                   timeout_multiplier=2.0)

        def driver():
            detector.heartbeat("a")
            detector.heartbeat("b")
            detector.forget("a")
            yield env.timeout(5.0)
            assert detector.sweep() == ["b"]   # no ghost declaration for "a"
            # Re-tracking "a" after forget starts a fresh incarnation.
            detector.heartbeat("a")
            assert detector.is_alive("a")
        env.process(driver())
        env.run(until=env.timeout(10.0))

    def test_dead_declaration_order_is_tracking_order(self):
        env = Environment()
        detector = FailureDetector(env, heartbeat_period_s=1.0,
                                   timeout_multiplier=2.0)
        dead = []
        detector.on_failure(dead.append)

        def driver():
            # Track in a specific order; all expire in the same sweep.
            for name in ("z", "m", "a"):
                detector.heartbeat(name)
            yield env.timeout(5.0)
            detector.sweep()
            assert dead == ["z", "m", "a"]
        env.process(driver())
        env.run(until=env.timeout(10.0))


class TestFailureDetectorStopStartLeak:
    def test_stop_start_leaves_a_single_sweep_loop(self):
        """stop() then start() while the old loop is mid-timeout must not
        leave two concurrent sweep loops (the old loop used to wake, see
        _running=True again and keep sweeping alongside the new loop)."""
        env = Environment()
        detector = FailureDetector(env, heartbeat_period_s=2.0,
                                   timeout_multiplier=3.0,
                                   sweep_period_s=1.0)

        def driver():
            detector.start()
            yield env.timeout(2.5)
            detector.stop()
            detector.start()      # old loop still pending on its timeout
            yield env.timeout(17.5)
            detector.stop()
        env.process(driver())
        env.run(until=env.timeout(25.0))
        # Single-loop rate: one sweep per period over ~20s (+1 trailing
        # sweep after each stop); the leak would give roughly double.
        assert detector.sweeps <= 23
        assert detector.sweeps >= 18

    def test_start_is_idempotent(self):
        env = Environment()
        detector = FailureDetector(env, sweep_period_s=1.0)

        def driver():
            detector.start()
            detector.start()
            detector.start()
            yield env.timeout(10.0)
            detector.stop()
        env.process(driver())
        env.run(until=env.timeout(15.0))
        assert detector.sweeps <= 12


def _fabric_env(n_workers=6, shards=2, service_hosts=2, replicas=2, **kwargs):
    env = Environment()
    topo = cluster_topology(env, n_workers=n_workers,
                            n_service_hosts=service_hosts,
                            server_link_mbps=1000.0, node_link_mbps=1000.0)
    runtime = BitDewEnvironment(
        topo, shards=shards, service_hosts=service_hosts,
        service_replicas=replicas, sync_period_s=1.0,
        heartbeat_period_s=1.0, **kwargs)
    return env, topo, runtime


class TestServiceFabricConstruction:
    def test_default_deployment_stays_classic(self):
        env = Environment()
        topo = cluster_topology(env, n_workers=2)
        runtime = BitDewEnvironment(topo)
        assert runtime.fabric is None
        assert isinstance(runtime.router, StaticRouter)

    def test_fabric_deployment_is_selected_by_spec(self):
        env, _topo, runtime = _fabric_env()
        assert runtime.fabric is not None
        assert isinstance(runtime.router, FabricRouter)
        assert runtime.container is runtime.fabric
        assert runtime.fabric.shards == 2
        assert len(runtime.fabric.hosts) == 2

    def test_validations(self):
        env = Environment()
        topo = cluster_topology(env, n_workers=2, n_service_hosts=2)
        with pytest.raises(ValueError):
            BitDewEnvironment(topo, service_hosts=3)       # only 2 available
        with pytest.raises(ValueError):
            BitDewEnvironment(topo, service_hosts=2, service_replicas=3)
        volatile = topo.worker_hosts[0]
        with pytest.raises(ValueError):
            ServiceFabric(env, [volatile], topo.network)

    def test_replica_placement_spreads_over_hosts(self):
        env, _topo, runtime = _fabric_env(shards=4, service_hosts=4,
                                          replicas=2)
        fabric = runtime.fabric
        for service in ("dc", "ds"):
            for shard in range(4):
                endpoints = fabric.shard_endpoints(service, shard)
                hosts = [e.host.name for e in endpoints]
                assert len(hosts) == 2
                assert len(set(hosts)) == 2          # distinct hosts
                assert endpoints[0].shard == f"{service}-{shard}"
        # Primaries rotate round-robin, so no host owns every shard.
        primaries = {fabric.shard_endpoints("dc", s)[0].host.name
                     for s in range(4)}
        assert len(primaries) == 4


class TestShardedFacades:
    def test_catalog_facade_routes_and_aggregates(self):
        env, _topo, runtime = _fabric_env()
        catalog = runtime.data_catalog
        repo = runtime.container.data_repository
        uids = []
        for i in range(12):
            data, content = _make_data(i)
            locator = repo.store_now(data, content)
            catalog.add_locator_now(locator)
            catalog.register_data_now(data)
            uids.append(data.uid)
        assert catalog.data_count == 12
        assert len(catalog.all_data_now()) == 12
        for uid in uids:
            assert catalog.get_data_now(uid) is not None
            locators = catalog.locators_for_now(uid)
            assert len(locators) == 1 and locators[0].data_uid == uid
        # Data really is spread over both shards (not all on one).
        per_shard = [shard.data_count for shard in catalog.shards]
        assert sum(per_shard) == 12 and all(c > 0 for c in per_shard)

    def test_scheduler_facade_routes_by_uid(self):
        env, _topo, runtime = _fabric_env()
        scheduler = runtime.data_scheduler
        attr = Attribute(name="t", replica=1)
        datas = [_make_data(i)[0] for i in range(10)]
        for data in datas:
            scheduler.schedule(data, attr)
        assert scheduler.managed_count == 10
        ring = runtime.fabric.ds_ring
        for data in datas:
            shard = ring.shard_for(data.uid)
            assert scheduler.shards[shard].entry(data.uid) is not None
            assert scheduler.entry(data.uid) is not None
        assert scheduler.unschedule(datas[0].uid)
        assert scheduler.managed_count == 9
        scheduler.pin(datas[1], "w1")
        assert "w1" in scheduler.owners_of(datas[1].uid)


class TestFabricRuntimeEndToEnd:
    def test_sharded_storm_places_and_downloads_everything(self):
        env, _topo, runtime = _fabric_env(n_workers=8, shards=3,
                                          service_hosts=3, replicas=1)
        scheduler = runtime.data_scheduler
        catalog = runtime.data_catalog
        repo = runtime.container.data_repository
        attr = Attribute(name="grid", replica=2, protocol="http")
        datas = []
        for i in range(30):
            data, content = _make_data(i)
            locator = repo.store_now(data, content)
            catalog.add_locator_now(locator)
            scheduler.schedule(data, attr)
            datas.append(data)
        runtime.attach_all(auto_sync=False)
        for _round in range(3):
            done = runtime.kick_sync()
            env.run(until=done)
        for data in datas:
            assert len(scheduler.owners_of(data.uid)) >= 2
        downloaded = sum(
            1 for agent in runtime.agents.values()
            for uid in agent.cached_uids() if agent.has_content(uid))
        assert downloaded == 60                     # 30 data × replica 2
        # Every shard took part in the synchronisation storm.
        assert all(s.sync_count > 0 for s in scheduler.shards)

    def test_unscheduled_data_is_deleted_through_scatter_merge(self):
        env, _topo, runtime = _fabric_env(n_workers=4, shards=2,
                                          service_hosts=2, replicas=1)
        scheduler = runtime.data_scheduler
        catalog = runtime.data_catalog
        repo = runtime.container.data_repository
        attr = Attribute(name="grid", replica=-1, protocol="http")
        datas = []
        for i in range(6):
            data, content = _make_data(i)
            locator = repo.store_now(data, content)
            catalog.add_locator_now(locator)
            scheduler.schedule(data, attr)
            datas.append(data)
        runtime.attach_all(auto_sync=False)
        done = runtime.kick_sync()
        env.run(until=done)
        agent = next(iter(runtime.agents.values()))
        assert all(agent.has_content(d.uid) for d in datas)
        # Drop half of Θ; the next sync's merged to_delete purges them.
        for data in datas[:3]:
            scheduler.unschedule(data.uid)
        done = runtime.kick_sync()
        env.run(until=done)
        assert all(not agent.has_local(d.uid) for d in datas[:3])
        assert all(agent.has_content(d.uid) for d in datas[3:])


class TestClientApisUnderFabric:
    def test_active_data_api_routes_through_the_fabric(self):
        """The fabric is a deployment spec, not a different API: the
        ActiveData surface (schedule/pin/unschedule/owners_of) and
        BitDew.delete must route by data uid like everything else."""
        env, _topo, runtime = _fabric_env(n_workers=2)
        agent = runtime.attach(_topo.worker_hosts[0], auto_sync=False)
        data, _content = _make_data(0)
        attr = Attribute(name="api", replica=1)
        outcome = {}

        def script():
            yield from agent.active_data.schedule(data, attr)
            outcome["scheduled"] = runtime.data_scheduler.entry(data.uid)
            yield from agent.active_data.pin(data)
            outcome["owners"] = yield from agent.active_data.owners_of(data)
            removed = yield from agent.active_data.unschedule(data)
            outcome["removed"] = removed
        env.process(script())
        env.run(until=env.timeout(5.0))

        assert outcome["scheduled"] is not None
        assert agent.host.name in outcome["owners"]
        assert outcome["removed"] is True
        assert runtime.data_scheduler.entry(data.uid) is None

    def test_fabric_stop_start_leaves_single_heartbeat_loops(self):
        """stop()+start() must not leave duplicate per-host heartbeat loops
        (same epoch guard as the failure detector's sweep loop)."""
        env, _topo, runtime = _fabric_env(n_workers=1)
        fabric = runtime.fabric
        beats = []
        original = fabric.host_detector.heartbeat
        fabric.host_detector.heartbeat = lambda name: (
            beats.append((env.now, name)), original(name))[1]

        def script():
            yield env.timeout(3.5)
            fabric.stop()
            fabric.start()      # old loops still pending on their timeouts
            yield env.timeout(6.5)
            fabric.stop()
        env.process(script())
        env.run(until=env.timeout(15.0))
        # One beat per host per period (~10 periods over 10 s, small slack);
        # leaked duplicate loops would roughly double this.
        per_host = len(beats) / len(fabric.hosts)
        assert per_host <= 13


class TestHeartbeatDrivenFailover:
    def test_router_reroutes_after_detection_and_routes_back(self):
        env, _topo, runtime = _fabric_env(n_workers=2)
        fabric = runtime.fabric
        router = runtime.router
        primary = fabric.hosts[0]
        timeout_s = fabric.host_detector.timeout_s

        # Find a shard whose primary replica lives on the primary host.
        target = None
        for shard in range(fabric.shards):
            if fabric.shard_endpoints("ds", shard)[0].host is primary:
                target = shard
                break
        assert target is not None

        log = {}

        def script():
            yield env.timeout(5.2)       # heartbeats seeded
            assert router._live_endpoint("ds", target).host is primary
            runtime.crash_service_host(primary)
            # Before detection the router still believes the primary alive.
            assert router._live_endpoint("ds", target).host is primary
            yield env.timeout(timeout_s + 2 * fabric.host_detector.sweep_period_s)
            rerouted = router._live_endpoint("ds", target)
            log["rerouted_host"] = rerouted.host.name
            log["reroutes"] = router.reroutes
            runtime.recover_service_host(primary)
            yield env.timeout(2 * fabric.host_detector.heartbeat_period_s)
            log["after_recovery"] = router._live_endpoint("ds", target).host.name
        env.process(script())
        env.run(until=env.timeout(30.0))

        assert log["rerouted_host"] != primary.name
        assert log["reroutes"] >= 1
        assert log["after_recovery"] == primary.name

    def test_all_replicas_dead_raises_labelled_rpc_error(self):
        env, _topo, runtime = _fabric_env(n_workers=2)
        fabric = runtime.fabric

        def script():
            yield env.timeout(2.2)
            for host in fabric.hosts:
                host.fail()
            yield env.timeout(fabric.host_detector.timeout_s + 1.0)
            with pytest.raises(RpcError) as err:
                runtime.router._live_endpoint("ds", 0)
            assert "no live replica" in str(err.value)
            assert "ds-0" in str(err.value)
        env.process(script())
        env.run(until=env.timeout(30.0))

    def test_client_sync_survives_service_host_crash(self):
        """End-to-end: a worker's periodic sync blocks through the outage
        and resumes on the replica within one heartbeat timeout."""
        env, _topo, runtime = _fabric_env(n_workers=3, shards=2,
                                          service_hosts=2, replicas=2,
                                          timeout_multiplier=12.0)
        fabric = runtime.fabric
        primary = fabric.hosts[0]
        agents = runtime.attach_all(auto_sync=False)
        ok_times = []

        def client(agent):
            while env.now < 25.0:
                try:
                    yield from agent.sync_once()
                    ok_times.append(env.now)
                except RpcError:
                    pass
                yield env.timeout(1.0)

        def crash():
            yield env.timeout(8.3)
            runtime.crash_service_host(primary)
        for agent in agents:
            env.process(client(agent))
        env.process(crash())
        env.run(until=env.timeout(30.0))

        after = [t for t in ok_times if t > 8.3]
        assert after, "no client ever resumed after the crash"
        # First post-crash success within one host-detector timeout.
        assert min(after) - 8.3 <= fabric.host_detector.timeout_s
        lost = sum(a.channel.lost_requests for a in agents)
        assert lost == 0


class TestBatchedSynchronizeScatter:
    """``synchronize_batch`` through the router == N sequential scatters.

    The batched scatter sends one RPC per shard for the whole cohort; the
    per-host path sends ``cohort x shards``.  Everything Algorithm 1 can
    observe — per-host schedules, owner state, the budget rotation — must
    come out identical either way (only wall/latency accounting differs).
    """

    def _runtime_with_data(self, datas, attr, n_workers=6, shards=2):
        env, topo, runtime = _fabric_env(n_workers=n_workers, shards=shards)
        scheduler = runtime.data_scheduler
        for data in datas:
            scheduler.schedule(data, attr)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        return env, runtime, agent

    def test_batch_matches_sequential_scatters(self):
        # replica=3 and max_new=3 over 2 shards: base=1 extra=1, so the
        # remainder shard rotates host to host — the batch must reproduce
        # that per-host split exactly.
        attr = Attribute(name="grid", replica=3)
        datas = [_make_data(i)[0] for i in range(8)]
        hosts = [f"w{i}" for i in range(5)]
        caches = [set() for _ in hosts]
        # Second round syncs present the first round's downloads back.
        env_a, runtime_a, agent_a = self._runtime_with_data(datas, attr)
        env_b, runtime_b, agent_b = self._runtime_with_data(datas, attr)

        def sequential(agent, store):
            views = [set(c) for c in caches]
            for _round in range(2):
                results = []
                for host, view in zip(hosts, views):
                    result = yield from agent.invoke(
                        "ds", "synchronize", host, view, max_new=3)
                    view.update(result.to_download)
                    results.append(result)
                store.append(results)

        def batched(agent, store):
            views = [set(c) for c in caches]
            for _round in range(2):
                results = yield from agent.invoke(
                    "ds", "synchronize_batch", hosts, views, max_new=3)
                for view, result in zip(views, results):
                    view.update(result.to_download)
                store.append(results)

        seq_rounds, batch_rounds = [], []
        env_a.run(until=env_a.process(sequential(agent_a, seq_rounds)))
        env_b.run(until=env_b.process(batched(agent_b, batch_rounds)))

        def comparable(result):
            return (result.host_name,
                    sorted(d.uid for d, _a in result.assigned),
                    result.to_delete, result.to_download)
        for seq_results, batch_results in zip(seq_rounds, batch_rounds):
            assert [comparable(r) for r in batch_results] \
                == [comparable(r) for r in seq_results]
        # The rotation pointer and every shard's scheduler state advanced
        # exactly as the per-host path would have advanced them.
        assert runtime_b.router._sync_rounds == runtime_a.router._sync_rounds \
            == 2 * len(hosts)
        for shard_a, shard_b in zip(runtime_a.data_scheduler.shards,
                                    runtime_b.data_scheduler.shards):
            assert shard_b.assignments == shard_a.assignments
            assert shard_b.sync_count == shard_a.sync_count
            assert shard_b._owner_index == shard_a._owner_index
            assert shard_b._replica_deficit == shard_a._replica_deficit
        # Same marshalled kilobytes (the batch carries the cohort's whole
        # payload), an order of magnitude fewer round trips.
        assert agent_b.channel.marshalled_kb \
            == pytest.approx(agent_a.channel.marshalled_kb)
        assert agent_b.channel.calls == agent_a.channel.calls / len(hosts)

    def test_empty_cohort_is_a_no_op(self):
        attr = Attribute(name="grid", replica=1)
        env, runtime, agent = self._runtime_with_data(
            [_make_data(0)[0]], attr)

        def script(store):
            result = yield from agent.invoke("ds", "synchronize_batch",
                                             [], [])
            store.append(result)

        out = []
        env.run(until=env.process(script(out)))
        assert out == [[]]
        assert runtime.router._sync_rounds == 0
