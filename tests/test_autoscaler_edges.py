"""Edge cases of the SLO autoscaler and its tracker.

Pins two behaviours the fabric-autoscale scenarios never hit head-on:

* the cooldown comparison is *strict* — a control tick landing exactly
  ``cooldown_s`` after the previous rebalance completes is allowed to
  act, one landing any earlier holds;
* a zero-arrival window (idle trace, or every sample aged out) yields
  ``percentile() is None`` and a clean "no samples" hold — no division
  by zero anywhere in :class:`SloTracker` or the decision logic.
"""

from __future__ import annotations

import pytest

from repro.services.autoscaler import HotspotMonitor, SloAutoscaler, SloTracker
from repro.sim.kernel import Environment


class _StubFabric:
    def __init__(self, env, shards=2):
        self.env = env
        self.shards = shards


class _StubRouter:
    migration = None


class _StubCoordinator:
    """Counts split/merge requests without touching any real fabric."""

    def __init__(self):
        self.splits = 0
        self.merges = 0

    def split(self):
        self.splits += 1
        return iter(())

    def merge(self):
        self.merges += 1
        return iter(())


def _autoscaler(env, tracker, **kwargs):
    kwargs.setdefault("min_shards", 1)
    kwargs.setdefault("max_shards", 8)
    return SloAutoscaler(_StubFabric(env), _StubRouter(), tracker,
                         coordinator=_StubCoordinator(), **kwargs)


def _advance(env, until):
    """Advance the kernel's clock to *until* (a timeout is the only event)."""
    def tick():
        yield env.timeout(until - env.now)
    env.run(env.process(tick()))


# ---------------------------------------------------------------------------
# cooldown boundary
# ---------------------------------------------------------------------------

def test_cooldown_expires_exactly_at_the_boundary():
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1)
    autoscaler = _autoscaler(env, tracker, cooldown_s=8.0)
    autoscaler._last_action_at = 0.0
    hot_p99 = 0.5  # far above target: only the cooldown can hold it back

    _advance(env, 7.999)
    assert autoscaler._decide(hot_p99) == ("hold", "cooldown")

    _advance(env, 8.0)
    action, reason = autoscaler._decide(hot_p99)
    assert action == "split", (
        f"cooldown must expire exactly at the boundary (strict <), "
        f"got hold: {reason}")

    # And a fresh autoscaler (no previous action) never holds on cooldown.
    fresh = _autoscaler(Environment(), SloTracker(Environment(),
                                                  target_p99_s=0.1))
    assert fresh._decide(hot_p99)[0] == "split"


def test_migration_in_flight_wins_over_everything():
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1)
    autoscaler = _autoscaler(env, tracker)
    autoscaler.router = type("R", (), {"migration": object()})()
    assert autoscaler._decide(0.5) == ("hold", "migration in flight")


def test_shard_count_guards():
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1)
    autoscaler = _autoscaler(env, tracker, max_shards=2)
    autoscaler.fabric.shards = 2
    assert autoscaler._decide(0.5) == (
        "hold", "p99 above target but at max_shards")
    autoscaler_min = _autoscaler(env, tracker, min_shards=2)
    autoscaler_min.fabric.shards = 2
    assert autoscaler_min._decide(0.001)[0] == "hold"


# ---------------------------------------------------------------------------
# empty / zero-arrival windows
# ---------------------------------------------------------------------------

def test_empty_window_percentile_is_none_and_decision_holds():
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1)
    assert tracker.percentile(0.99) is None
    assert tracker.p99() is None
    assert tracker.in_violation is False
    autoscaler = _autoscaler(env, tracker)
    assert autoscaler._decide(None) == ("hold", "no samples")


def test_zero_arrival_trace_polls_without_division_by_zero():
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1, window_s=2.0, poll_s=0.5)
    env.run(env.process(tracker.run(for_s=5.0)))
    assert tracker.polls == 10
    assert tracker.observed == 0
    assert tracker.violation_seconds == 0.0
    assert tracker.violation_polls == 0
    assert tracker.worst_p99_s == 0.0


def test_samples_aging_out_returns_window_to_empty():
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1, window_s=2.0)
    tracker.observe(0.5)
    assert tracker.p99() == pytest.approx(0.5)
    assert tracker.in_violation is True
    _advance(env, 3.0)  # strictly past window_s: the sample evicts
    assert tracker.p99() is None
    assert tracker.in_violation is False
    # A subsequent violation-integral poll over the now-empty window is a
    # clean no-op, not a crash.
    env.run(env.process(tracker.run(for_s=1.0)))
    assert tracker.violation_seconds == 0.0


def test_control_loop_runs_on_an_idle_fabric():
    """The full loop (not just _decide) over a zero-arrival window."""
    env = Environment()
    tracker = SloTracker(env, target_p99_s=0.1)
    autoscaler = _autoscaler(env, tracker, interval_s=1.0)
    env.run(env.process(autoscaler.run(for_s=4.0)))
    assert len(autoscaler.decisions) == 4
    assert all(d.action == "hold" and d.reason == "no samples"
               for d in autoscaler.decisions)
    assert autoscaler.splits == 0 and autoscaler.merges == 0


def test_hotspot_monitor_idle_delta():
    monitor = HotspotMonitor([])
    assert monitor.delta() == {}
    assert HotspotMonitor.hottest({}) is None
