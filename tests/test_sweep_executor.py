"""Tests for the parallel sweep executor, the result cache and their CLI."""

import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import (
    ResultCache,
    ScenarioRegistry,
    SweepFailure,
    derive_point_seed,
    execute_sweep,
    run_sweep,
)
from repro.experiments.cache import code_version_salt, point_key
from repro.experiments.executor import PointFailure

GRID = {"n_nodes": [2, 3]}
BASE = {"size_mb": 1.0}

# distribution with an unregistered protocol raises inside the runner — the
# deliberate crash used to exercise failure isolation (including in workers).
FAILING_GRID = {"protocol": ["ftp", "nope"]}
FAILING_BASE = {"size_mb": 1.0, "n_nodes": 2}


# ---------------------------------------------------------------------------
# Content-addressed keys and per-point seeds
# ---------------------------------------------------------------------------

class TestPointKey:
    def test_stable_and_order_insensitive(self):
        first = point_key("fig4", {"replica": 3, "seed": 7}, salt="s")
        second = point_key("fig4", {"seed": 7, "replica": 3}, salt="s")
        assert first == second
        assert len(first) == 64

    def test_sensitive_to_every_component(self):
        base = point_key("fig4", {"seed": 7}, salt="s")
        assert point_key("fig5", {"seed": 7}, salt="s") != base
        assert point_key("fig4", {"seed": 8}, salt="s") != base
        assert point_key("fig4", {"seed": 7}, salt="t") != base

    def test_code_salt_is_memoised_and_hexadecimal(self):
        salt = code_version_salt()
        assert salt == code_version_salt()
        int(salt, 16)


class TestDerivePointSeed:
    def test_deterministic(self):
        assert derive_point_seed(7, "fig4", {"replica": 3}) \
            == derive_point_seed(7, "fig4", {"replica": 3})

    def test_varies_with_content_not_position(self):
        seeds = {derive_point_seed(7, "fig4", {"replica": r})
                 for r in (1, 2, 3, 5)}
        assert len(seeds) == 4
        assert derive_point_seed(8, "fig4", {"replica": 3}) \
            != derive_point_seed(7, "fig4", {"replica": 3})


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_round_trip_and_accounting(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run = {"scenario": "toy", "results": {"x": 1.5}}
        assert cache.get("ab" + "0" * 62) is None
        cache.put("ab" + "0" * 62, "toy", run)
        assert cache.get("ab" + "0" * 62) == run
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "cd" + "0" * 62
        cache.put(key, "toy", {"ok": True})
        with open(cache._path(key), "w") as fh:
            fh.write("{not json")
        assert cache.get(key) is None

    def test_unwritable_cache_degrades_to_no_op(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        cache = ResultCache(str(blocker))
        cache.put("ab" + "0" * 62, "toy", {"x": 1})    # must not raise
        assert cache.stats.stores == 0
        assert cache.get("ab" + "0" * 62) is None

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(f"{i:02d}" + "0" * 62, f"scn{i}", {"i": i})
        entries = cache.entries()
        assert len(entries) == 3 == len(cache)
        assert {e["scenario"] for e in entries} == {"scn0", "scn1", "scn2"}
        assert cache.size_bytes() > 0
        assert cache.clear() == 3
        assert cache.entries() == []


# ---------------------------------------------------------------------------
# Executor determinism
# ---------------------------------------------------------------------------

class TestExecutorDeterminism:
    def test_serial_and_parallel_byte_identical(self):
        serial = execute_sweep("ftp-alone", GRID, base_params=BASE, jobs=1)
        parallel = execute_sweep("ftp-alone", GRID, base_params=BASE, jobs=2)
        assert serial.to_json() == parallel.to_json()
        assert [p.spec.params["n_nodes"] for p in parallel.points] == [2, 3]

    def test_matches_legacy_serial_sweep_document(self):
        from repro.experiments.runner import sweep_to_dict
        legacy = sweep_to_dict(
            "ftp-alone", GRID,
            run_sweep("ftp-alone", GRID, base_params=BASE))
        outcome = execute_sweep("ftp-alone", GRID, base_params=BASE, jobs=2)
        assert json.dumps(legacy, indent=2, sort_keys=True) + "\n" \
            == outcome.to_json()

    def test_derived_seeds_are_jobs_invariant_and_distinct(self):
        grid = {"replica": [3, 5]}
        serial = execute_sweep("fig4", grid, base_params={
            "seed": 7, "n_initial": 3, "n_spare": 2, "size_mb": 1.0,
            "settle_s": 30.0, "horizon_s": 60.0}, derive_seeds=True)
        parallel = execute_sweep("fig4", grid, base_params={
            "seed": 7, "n_initial": 3, "n_spare": 2, "size_mb": 1.0,
            "settle_s": 30.0, "horizon_s": 60.0}, jobs=2, derive_seeds=True)
        assert serial.to_json() == parallel.to_json()
        seeds = [p.spec.params["seed"] for p in serial.points]
        assert len(set(seeds)) == 2
        assert seeds == [derive_point_seed(7, "fig4", {"replica": 3}),
                         derive_point_seed(7, "fig4", {"replica": 5})]

    def test_unknown_grid_parameter_fails_fast(self):
        with pytest.raises(ValueError, match="no parameter"):
            execute_sweep("ftp-alone", {"bogus": [1, 2]},
                          base_params=BASE, jobs=2)


# ---------------------------------------------------------------------------
# Cache integration
# ---------------------------------------------------------------------------

class TestExecutorCache:
    def test_hit_miss_accounting_and_byte_identity(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = execute_sweep("ftp-alone", GRID, base_params=BASE, cache=cache)
        assert cold.stats.executed == 2
        assert cold.stats.cache_hits == 0
        assert cache.stats.misses == 2 and cache.stats.stores == 2

        warm = execute_sweep("ftp-alone", GRID, base_params=BASE, cache=cache)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == 2
        assert all(p.cached for p in warm.points)
        assert warm.to_json() == cold.to_json()

    def test_partial_cache_reuses_only_matching_points(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        execute_sweep("ftp-alone", {"n_nodes": [2]}, base_params=BASE,
                      cache=cache)
        grown = execute_sweep("ftp-alone", {"n_nodes": [2, 3]},
                              base_params=BASE, cache=cache)
        assert grown.stats.cache_hits == 1
        assert grown.stats.executed == 1
        assert [p.cached for p in grown.points] == [True, False]

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = execute_sweep("distribution", FAILING_GRID,
                              base_params=FAILING_BASE, cache=cache)
        assert first.stats.failed == 1
        second = execute_sweep("distribution", FAILING_GRID,
                               base_params=FAILING_BASE, cache=cache)
        assert second.stats.cache_hits == 1       # the ftp point
        assert second.stats.executed == 1         # the crash re-runs


# ---------------------------------------------------------------------------
# Crash isolation, retries
# ---------------------------------------------------------------------------

class TestFailureIsolation:
    def test_structured_failure_entry(self):
        outcome = execute_sweep("distribution", FAILING_GRID,
                                base_params=FAILING_BASE)
        assert not outcome.ok and outcome.stats.failed == 1
        good, bad = outcome.points
        assert good.ok and bad.failure is not None
        assert bad.failure.error == "UnknownProtocolError"
        assert bad.failure.attempts == 1
        assert "UnknownProtocolError" in bad.failure.traceback
        # KeyError subclasses must not leak repr()-quoted messages.
        assert bad.failure.message.startswith("no transfer protocol")
        entry = outcome.to_dict()["runs"][1]
        assert entry["failure"]["error"] == "UnknownProtocolError"
        assert entry["spec"]["params"]["protocol"] == "nope"
        assert "results" not in entry

    def test_failure_isolation_in_pool_workers(self):
        outcome = execute_sweep("distribution", FAILING_GRID,
                                base_params=FAILING_BASE, jobs=2)
        assert outcome.points[0].ok
        assert outcome.points[1].failure.error == "UnknownProtocolError"

    def test_retries_recounted(self):
        outcome = execute_sweep("distribution", {"protocol": ["nope"]},
                                base_params=FAILING_BASE, retries=2)
        assert outcome.points[0].failure.attempts == 3
        assert outcome.stats.retries_used == 2

    def test_run_sweep_api_raises_sweep_failure(self):
        with pytest.raises(SweepFailure) as err:
            run_sweep("distribution", FAILING_GRID,
                      base_params=FAILING_BASE, retries=1)
        assert len(err.value.failures) == 1
        assert err.value.failures[0].failure.attempts == 2

    def test_run_sweep_parallel_matches_serial_results(self):
        serial = run_sweep("ftp-alone", GRID, base_params=BASE)
        parallel = run_sweep("ftp-alone", GRID, base_params=BASE, jobs=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_custom_registry_falls_back_inline(self):
        registry = ScenarioRegistry()
        calls = []

        def toy(x: int = 1):
            """Toy."""
            calls.append(x)
            return {"x": x}

        registry.register("toy", toy, title="toy")
        outcome = execute_sweep("toy", {"x": [1, 2, 3]}, registry=registry,
                                jobs=4)
        assert [p.run["results"]["x"] for p in outcome.points] == [1, 2, 3]
        assert calls == [1, 2, 3]                  # ran in this process

    def test_progress_lines(self):
        lines = []
        execute_sweep("distribution", FAILING_GRID, base_params=FAILING_BASE,
                      progress=lines.append)
        assert len(lines) == 2
        assert lines[0].startswith("[1/2] distribution protocol=ftp")
        assert "FAILED after 1 attempt" in lines[1]

    def test_point_failure_to_dict(self):
        failure = PointFailure(error="E", message="m", traceback="tb",
                               attempts=2)
        assert failure.to_dict() == {
            "attempts": 2, "error": "E", "message": "m", "traceback": "tb"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestSweepCLI:
    ARGS = ["sweep", "ftp-alone", "--grid", "n_nodes=2,3",
            "--set", "size_mb=1.0", "--quiet"]

    def test_jobs_byte_identical_and_rerun_fully_cached(self, tmp_path,
                                                        capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        rerun = tmp_path / "rerun.json"
        cache_dir = str(tmp_path / "cache")
        assert cli_main(self.ARGS + ["--no-cache", "--out", str(serial)]) == 0
        assert cli_main(self.ARGS + ["--jobs", "2", "--cache-dir", cache_dir,
                                     "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

        args = [a for a in self.ARGS if a != "--quiet"]
        assert cli_main(args + ["--jobs", "2", "--cache-dir", cache_dir,
                                "--out", str(rerun)]) == 0
        assert rerun.read_bytes() == serial.read_bytes()
        captured = capsys.readouterr()
        assert "(0 run, 2 cached, 0 failed)" in captured.out
        assert captured.err.count("cached") == 2   # progress lines on stderr

    def test_failed_point_exit_code_and_entry(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = cli_main(["sweep", "distribution", "--grid",
                         "protocol=ftp,nope", "--set", "size_mb=1.0",
                         "--set", "n_nodes=2", "--no-cache", "--out",
                         str(out)])
        assert code == 1
        doc = json.loads(out.read_text())
        assert doc["runs"][1]["failure"]["error"] == "UnknownProtocolError"
        assert "FAILED" in capsys.readouterr().out

    def test_seed_per_point_writes_derived_seeds(self, tmp_path):
        out = tmp_path / "sweep.json"
        assert cli_main(["sweep", "fig4", "--grid", "replica=3,5",
                         "--seed", "7", "--seed-per-point",
                         "--set", "n_initial=3", "--set", "n_spare=2",
                         "--set", "size_mb=1.0", "--set", "settle_s=30.0",
                         "--set", "horizon_s=60.0", "--no-cache",
                         "--quiet", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        seeds = [run["spec"]["params"]["seed"] for run in doc["runs"]]
        assert seeds == [derive_point_seed(7, "fig4", {"replica": 3}),
                         derive_point_seed(7, "fig4", {"replica": 5})]

    def test_malformed_grid_is_a_clean_error(self, capsys):
        assert cli_main(["sweep", "ftp-alone", "--grid", "=2",
                         "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "empty parameter name" in err and "Traceback" not in err

    def test_unknown_grid_parameter_is_a_clean_error(self, capsys):
        assert cli_main(["sweep", "ftp-alone", "--grid", "bogus=1,2",
                         "--set", "size_mb=1.0", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "no parameter" in err and "Traceback" not in err

    def test_unknown_set_parameter_is_a_clean_error(self, capsys):
        assert cli_main(["sweep", "ftp-alone", "--grid", "n_nodes=2",
                         "--set", "bogus=1", "--quiet"]) == 2
        err = capsys.readouterr().err
        assert "no parameter" in err and "Traceback" not in err


class TestRunCLI:
    def test_run_with_cache_hits_second_time(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["run", "ftp-alone", "--set", "size_mb=1.0",
                "--set", "n_nodes=2", "--cache-dir", cache_dir]
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert cli_main(args + ["--out", str(first)]) == 0
        assert "(cached)" not in capsys.readouterr().out
        assert cli_main(args + ["--out", str(second)]) == 0
        assert "(cached)" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()

    def test_run_without_cache_flags_stays_plain(self, tmp_path, capsys):
        # The default `run` path keeps raw results (volatile keys included).
        assert cli_main(["run", "sync-storm", "--set", "n_workers=3",
                         "--set", "rounds=1", "--set", "size_mb=0.5"]) == 0
        assert "wall_s" in capsys.readouterr().out

    def test_run_failure_with_retries_exits_1(self, capsys):
        code = cli_main(["run", "distribution", "--set", "protocol=nope",
                         "--set", "size_mb=1.0", "--set", "n_nodes=2",
                         "--retries", "1", "--no-cache", "--quiet"])
        assert code == 1
        err = capsys.readouterr().err
        assert "failed after 2 attempts" in err
        assert "UnknownProtocolError" in err


class TestCacheCLI:
    def _populate(self, cache_dir):
        assert cli_main(["sweep", "ftp-alone", "--grid", "n_nodes=2,3",
                         "--set", "size_mb=1.0", "--cache-dir", cache_dir,
                         "--quiet"]) == 0

    def test_stats_ls_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._populate(cache_dir)
        capsys.readouterr()

        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries   : 2" in out and "ftp-alone" in out

        assert cli_main(["cache", "ls", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("ftp-alone") == 2

        assert cli_main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 2 cached results" in capsys.readouterr().out

        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries   : 0" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Docs stay in sync with BENCH.json
# ---------------------------------------------------------------------------

class TestBenchmarksDoc:
    def test_benchmarks_doc_covers_every_bench_point(self):
        root = os.path.join(os.path.dirname(__file__), os.pardir)
        doc = open(os.path.join(root, "docs", "BENCHMARKS.md")).read()
        bench = json.load(open(os.path.join(root, "BENCH.json")))
        for bench_point in bench["points"]:
            assert f"`{bench_point['id']}`" in doc, (
                f"docs/BENCHMARKS.md misses BENCH point {bench_point['id']!r}")
        # The regeneration command must be spelled out for the whole file.
        assert "pytest benchmarks/test_scale_grid.py" in doc
