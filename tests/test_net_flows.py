"""Unit tests for the flow-level bandwidth-sharing network."""

import pytest

from repro.net.flows import Network, TransferFailed
from repro.net.host import Host, HostState


class TestHostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            Host("h", uplink_mbps=0)
        with pytest.raises(ValueError):
            Host("h", cpu_factor=-1)

    def test_compute_time_scales_with_cpu_factor(self):
        fast = Host("fast", cpu_factor=2.0)
        slow = Host("slow", cpu_factor=0.5)
        assert fast.compute_time(100) == pytest.approx(50)
        assert slow.compute_time(100) == pytest.approx(200)
        with pytest.raises(ValueError):
            fast.compute_time(-1)

    def test_failure_and_recovery_listeners(self):
        host = Host("h")
        log = []
        host.on_failure(lambda h: log.append(("down", h.name)))
        host.on_recovery(lambda h: log.append(("up", h.name)))
        host.fail()
        host.fail()      # idempotent
        host.recover()
        host.recover()   # idempotent
        assert log == [("down", "h"), ("up", "h")]
        assert host.state is HostState.ONLINE

    def test_hosts_hash_by_identity(self):
        a, b = Host("same"), Host("same")
        assert a != b
        assert len({a, b}) == 2


class TestSingleFlow:
    def test_single_flow_rate_limited_by_bottleneck(self, env, simple_network):
        network, server, workers = simple_network
        flow = network.transfer(server, workers[0], 100.0)
        env.run(until=flow.done)
        # 100 MB at 100 MB/s plus 1 ms latency.
        assert flow.end_time == pytest.approx(1.001, rel=1e-3)
        assert flow.transferred_mb == pytest.approx(100.0)
        assert network.completed_flows == 1

    def test_zero_size_transfer_is_latency_only(self, env, simple_network):
        network, server, workers = simple_network
        flow = network.transfer(server, workers[0], 0.0)
        env.run(until=flow.done)
        assert flow.end_time == pytest.approx(0.001)

    def test_transfer_to_unregistered_host_rejected(self, env, simple_network):
        network, server, _ = simple_network
        stranger = Host("stranger")
        with pytest.raises(KeyError):
            network.transfer(server, stranger, 10)

    def test_duplicate_host_name_rejected(self, env, simple_network):
        network, _, _ = simple_network
        with pytest.raises(ValueError):
            network.add_host(Host("server"))

    def test_mean_rate(self, env, simple_network):
        network, server, workers = simple_network
        flow = network.transfer(server, workers[0], 50.0)
        env.run(until=flow.done)
        assert flow.mean_rate_mbps == pytest.approx(50.0 / flow.duration)


class TestSharing:
    def test_server_uplink_shared_fairly(self, env, simple_network):
        network, server, workers = simple_network
        flows = [network.transfer(server, w, 100.0) for w in workers]
        env.run(until=env.all_of([f.done for f in flows]))
        # Three flows share the server's 100 MB/s: ~3 s each.
        for flow in flows:
            assert flow.end_time == pytest.approx(3.001, rel=1e-2)

    def test_staggered_flows_speed_up_after_completion(self, env, simple_network):
        network, server, workers = simple_network
        first = network.transfer(server, workers[0], 100.0)

        def add_second():
            yield env.timeout(0.501)
            return network.transfer(server, workers[1], 100.0)

        handle = env.process(add_second())
        env.run(until=first.done)
        second = handle.value
        env.run(until=second.done)
        # First flow: 0.5 s alone (50 MB) then shares -> finishes around 1.5 s.
        assert first.end_time == pytest.approx(1.5, rel=5e-2)
        # Second flow gets full bandwidth after the first finishes.
        assert second.end_time < 2.6

    def test_distinct_paths_do_not_interfere(self, env):
        network = Network(env, default_latency_s=0.0)
        a = network.add_host(Host("a", uplink_mbps=10, downlink_mbps=10))
        b = network.add_host(Host("b", uplink_mbps=10, downlink_mbps=10))
        c = network.add_host(Host("c", uplink_mbps=10, downlink_mbps=10))
        d = network.add_host(Host("d", uplink_mbps=10, downlink_mbps=10))
        f1 = network.transfer(a, b, 10)
        f2 = network.transfer(c, d, 10)
        env.run(until=env.all_of([f1.done, f2.done]))
        assert f1.end_time == pytest.approx(1.0, rel=1e-3)
        assert f2.end_time == pytest.approx(1.0, rel=1e-3)

    def test_rate_cap_limits_single_flow(self, env, simple_network):
        network, server, workers = simple_network
        flow = network.transfer(server, workers[0], 50.0, rate_cap_mbps=10.0)
        env.run(until=flow.done)
        assert flow.end_time == pytest.approx(5.001, rel=1e-3)

    def test_background_load_reduces_capacity(self, env, simple_network):
        network, server, workers = simple_network
        network.add_background_load(server, "up", 50.0)
        flow = network.transfer(server, workers[0], 100.0)
        env.run(until=flow.done)
        assert flow.end_time == pytest.approx(2.001, rel=1e-2)
        network.remove_background_load(server, "up", 50.0)
        flow2 = network.transfer(server, workers[1], 100.0)
        env.run(until=flow2.done)
        assert flow2.duration == pytest.approx(1.0, rel=1e-2)

    def test_cluster_gateway_caps_intercluster_traffic(self, env):
        network = Network(env, default_latency_s=0.0, wan_latency_s=0.0)
        src = network.add_host(Host("src", cluster="A",
                                    uplink_mbps=1000, downlink_mbps=1000))
        dsts = [network.add_host(Host(f"dst{i}", cluster="B",
                                      uplink_mbps=1000, downlink_mbps=1000))
                for i in range(4)]
        network.set_cluster_gateway("B", egress_mbps=100, ingress_mbps=100)
        flows = [network.transfer(src, d, 100) for d in dsts]
        env.run(until=env.all_of([f.done for f in flows]))
        # 400 MB total through a 100 MB/s gateway -> 4 s.
        assert max(f.end_time for f in flows) == pytest.approx(4.0, rel=2e-2)

    def test_gateway_validation(self, env):
        network = Network(env)
        with pytest.raises(ValueError):
            network.set_cluster_gateway("x", egress_mbps=0)


class TestFailures:
    def test_host_failure_aborts_flows(self, env, simple_network):
        network, server, workers = simple_network
        flow = network.transfer(server, workers[0], 1000.0)

        def crash():
            yield env.timeout(1.0)
            workers[0].fail()

        env.process(crash())

        def waiter():
            try:
                yield flow.done
            except TransferFailed as exc:
                return str(exc)

        p = env.process(waiter())
        env.run(until=p)
        assert "failed" in p.value
        assert flow.aborted
        assert network.failed_flows == 1

    def test_transfer_to_offline_host_fails_immediately(self, env, simple_network):
        network, server, workers = simple_network
        workers[0].fail()
        flow = network.transfer(server, workers[0], 10.0)
        assert flow.done.triggered
        assert flow.done.ok is False

    def test_abort_api(self, env, simple_network):
        network, server, workers = simple_network
        flow = network.transfer(server, workers[0], 1000.0)

        def do_abort():
            yield env.timeout(0.5)
            network.abort(flow, "operator cancelled")

        env.process(do_abort())
        env.run(until=2)
        assert flow.aborted
        assert not [f for f in network.active_flows]

    def test_other_flows_speed_up_after_failure(self, env, simple_network):
        network, server, workers = simple_network
        victim = network.transfer(server, workers[0], 1000.0)
        survivor = network.transfer(server, workers[1], 100.0)

        def crash():
            yield env.timeout(0.5)
            workers[0].fail()

        env.process(crash())
        env.run(until=survivor.done)
        # Survivor shared 100 MB/s for 0.5 s (25 MB done), then got it all.
        assert survivor.end_time == pytest.approx(1.25, rel=5e-2)
        assert victim.aborted

    def test_latency_between(self, env):
        network = Network(env, default_latency_s=0.001, wan_latency_s=0.05)
        a = network.add_host(Host("a", cluster="one"))
        b = network.add_host(Host("b", cluster="one"))
        c = network.add_host(Host("c", cluster="two"))
        assert network.latency_between(a, a) == 0.0
        assert network.latency_between(a, b) == 0.001
        assert network.latency_between(a, c) == 0.05


class TestCoalescing:
    def test_same_time_arrivals_settle_once(self, env):
        """A burst of simultaneous transfers triggers one allocation pass,
        not one global recompute per flow."""
        network = Network(env, default_latency_s=0.001)
        server = network.add_host(Host("server", uplink_mbps=100,
                                       downlink_mbps=100))
        workers = [network.add_host(Host(f"w{i}", uplink_mbps=10,
                                         downlink_mbps=10))
                   for i in range(50)]
        flows = [network.transfer(server, w, 1.0) for w in workers]
        env.run(until=env.all_of([f.done for f in flows]))
        assert network.completed_flows == 50
        assert network.recompute_requests >= 50
        # One pass for the arrival burst, one for the completion burst.
        assert network.allocation_passes <= 3

    def test_dense_allocator_option(self, env):
        network = Network(env, default_latency_s=0.0,
                          allocator="dense", coalesce=False)
        assert network.allocator_name == "dense"
        a = network.add_host(Host("a", uplink_mbps=10, downlink_mbps=10))
        b = network.add_host(Host("b", uplink_mbps=10, downlink_mbps=10))
        flow = network.transfer(a, b, 10)
        env.run(until=flow.done)
        assert flow.end_time == pytest.approx(1.0, rel=1e-3)

    def test_unknown_allocator_rejected(self, env):
        with pytest.raises(ValueError):
            Network(env, allocator="magic")

    def test_gateway_added_mid_flight_applies_to_running_flows(self, env):
        """Constraint membership is rebuilt when the topology changes."""
        network = Network(env, default_latency_s=0.0, wan_latency_s=0.0)
        src = network.add_host(Host("src", cluster="A",
                                    uplink_mbps=1000, downlink_mbps=1000))
        dst = network.add_host(Host("dst", cluster="B",
                                    uplink_mbps=1000, downlink_mbps=1000))
        flow = network.transfer(src, dst, 100)

        def clamp():
            yield env.timeout(0.05)   # flow running at 1000 MB/s: 50 MB done
            network.set_cluster_gateway("B", egress_mbps=50, ingress_mbps=50)

        env.process(clamp())
        env.run(until=flow.done)
        # Remaining 50 MB at the 50 MB/s gateway: 0.05 + 1.0 seconds.
        assert flow.end_time == pytest.approx(1.05, rel=1e-2)

    def test_completion_timer_is_cancelled_not_stale(self, env, simple_network):
        network, server, workers = simple_network
        flow1 = network.transfer(server, workers[0], 100.0)

        def add_more():
            yield env.timeout(0.2)
            return network.transfer(server, workers[1], 10.0)

        handle = env.process(add_more())
        env.run(until=flow1.done)
        assert handle.value.finished
        # The superseded wake-up was cancelled, not processed as a no-op.
        assert network.completed_flows == 2

    def test_host_link_speed_change_applies_next_pass(self, env):
        """Link capacities are read live at allocation time, matching the
        dense reference allocator's per-pass rebuild."""
        network = Network(env, default_latency_s=0.0)
        a = network.add_host(Host("a", uplink_mbps=100, downlink_mbps=100))
        b = network.add_host(Host("b", uplink_mbps=100, downlink_mbps=100))
        flow = network.transfer(a, b, 100)

        def degrade():
            yield env.timeout(0.5)        # 50 MB done at 100 MB/s
            a.uplink_mbps = 10.0
            network.add_background_load(a, "up", 0.0)   # nudge a recompute

        env.process(degrade())
        env.run(until=flow.done)
        # Remaining 50 MB at 10 MB/s: 0.5 + 5.0 seconds.
        assert flow.end_time == pytest.approx(5.5, rel=1e-2)
