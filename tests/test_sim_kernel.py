"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)


class TestClockAndTimeout:
    def test_initial_time_is_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_can_be_set(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        done = []

        def proc():
            yield env.timeout(3.5)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [3.5]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_carries_value(self, env):
        def proc():
            value = yield env.timeout(1, value="hello")
            return value

        p = env.process(proc())
        env.run()
        assert p.value == "hello"

    def test_run_until_time_stops_clock_exactly(self, env):
        def proc():
            while True:
                yield env.timeout(10)

        env.process(proc())
        env.run(until=25)
        assert env.now == 25

    def test_run_until_past_time_raises(self, env):
        env._now = 10
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_nested_timeouts_execute_in_order(self, env):
        order = []

        def proc(name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc("b", 2))
        env.process(proc("a", 1))
        env.process(proc("c", 3))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, env):
        order = []

        def proc(name):
            yield env.timeout(1)
            order.append(name)

        for name in "abcde":
            env.process(proc(name))
        env.run()
        assert order == list("abcde")

    def test_peek_empty_queue(self, env):
        assert env.peek() == float("inf")

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestEvents:
    def test_event_lifecycle(self, env):
        event = env.event()
        assert not event.triggered and not event.processed
        event.succeed(42)
        assert event.triggered and not event.processed
        env.run()
        assert event.processed
        assert event.value == 42

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_double_trigger_raises(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_waiting_on_failed_event_raises_in_process(self, env):
        event = env.event()

        def proc():
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(proc())
        event.fail(RuntimeError("boom"))
        env.run()
        assert p.value == "caught boom"

    def test_unhandled_failure_propagates_from_run(self, env):
        event = env.event()
        event.fail(RuntimeError("unattended"))
        with pytest.raises(RuntimeError, match="unattended"):
            env.run()

    def test_wait_on_already_processed_event(self, env):
        event = env.event()
        event.succeed("early")
        env.run()

        def proc():
            value = yield event
            return value

        p = env.process(proc())
        env.run()
        assert p.value == "early"

    def test_trigger_copies_state(self, env):
        a = env.event()
        b = env.event()
        a.succeed(7)
        b.trigger(a)
        env.run()
        assert b.value == 7


class TestProcesses:
    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "result"

        p = env.process(proc())
        env.run()
        assert p.value == "result"
        assert not p.is_alive

    def test_process_waits_on_process(self, env):
        def child():
            yield env.timeout(2)
            return 10

        def parent():
            value = yield env.process(child())
            return value * 2

        p = env.process(parent())
        env.run()
        assert p.value == 20
        assert env.now == 2

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_raises(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("child failed")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                return str(exc)

        p = env.process(parent())
        env.run()
        assert p.value == "child failed"

    def test_run_until_process(self, env):
        def proc():
            yield env.timeout(5)
            return "done"

        p = env.process(proc())
        other = env.process(iter_forever(env))
        result = env.run(until=p)
        assert result == "done"
        assert env.now == 5
        assert other.is_alive

    def test_run_until_failing_process_raises(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("bad")

        p = env.process(proc())
        with pytest.raises(KeyError):
            env.run(until=p)

    def test_interrupt_delivers_cause(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return interrupt.cause, env.now

        def interrupter(victim):
            yield env.timeout(3)
            victim.interrupt("wake up")

        victim = env.process(sleeper())
        env.process(interrupter(victim))
        env.run(until=victim)
        cause, when = victim.value
        assert cause == "wake up"
        assert when == pytest.approx(3)

    def test_interrupt_terminated_process_raises(self, env):
        def proc():
            yield env.timeout(1)

        p = env.process(proc())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_active_process_tracking(self, env):
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None


def iter_forever(env):
    while True:
        yield env.timeout(1)


class TestConditions:
    def test_all_of_waits_for_everything(self, env):
        def worker(delay, value):
            yield env.timeout(delay)
            return value

        procs = [env.process(worker(d, d * 10)) for d in (1, 2, 3)]

        def waiter():
            results = yield env.all_of(procs)
            return sorted(results.values())

        p = env.process(waiter())
        env.run()
        assert p.value == [10, 20, 30]
        assert env.now == 3

    def test_any_of_returns_first(self, env):
        def worker(delay, value):
            yield env.timeout(delay)
            return value

        procs = [env.process(worker(d, d)) for d in (5, 1, 3)]

        def waiter():
            results = yield env.any_of(procs)
            return list(results.values())

        p = env.process(waiter())
        env.run(until=p)
        assert p.value == [1]
        assert env.now == 1

    def test_all_of_empty_succeeds_immediately(self, env):
        def waiter():
            result = yield env.all_of([])
            return result

        p = env.process(waiter())
        env.run()
        assert p.value == {}

    def test_all_of_fails_fast(self, env):
        def failing():
            yield env.timeout(1)
            raise RuntimeError("nope")

        def slow():
            yield env.timeout(100)

        def waiter():
            try:
                yield env.all_of([env.process(failing()), env.process(slow())])
            except RuntimeError:
                return env.now

        p = env.process(waiter())
        env.run(until=p)
        assert p.value == 1


class TestTimers:
    def test_timer_fires_callback(self, env):
        fired = []
        env.call_later(2.0, lambda evt: fired.append(env.now))
        env.run()
        assert fired == [2.0]

    def test_cancelled_timer_never_fires(self, env):
        fired = []
        timer = env.call_later(2.0, lambda evt: fired.append(env.now))
        assert timer.cancel() is True
        env.run()
        assert fired == []
        assert env.now == 0.0   # nothing left to process

    def test_cancel_after_fire_returns_false(self, env):
        timer = env.call_later(1.0, lambda evt: None)
        env.run()
        assert timer.cancel() is False

    def test_peek_skips_cancelled_timers(self, env):
        first = env.call_later(1.0, lambda evt: None)
        env.call_later(5.0, lambda evt: None)
        first.cancel()
        assert env.peek() == 5.0

    def test_run_until_time_ignores_cancelled_timers(self, env):
        """A cancelled timer before the stop time must not smuggle the
        clock past it."""
        fired = []
        doomed = env.call_later(1.0, lambda evt: fired.append("doomed"))
        env.call_later(10.0, lambda evt: fired.append("late"))
        doomed.cancel()
        env.run(until=5.0)
        assert fired == []
        assert env.now == 5.0
        env.run(until=20.0)
        assert fired == ["late"]

    def test_negative_timer_delay_rejected(self, env):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            env.call_later(-1.0, lambda evt: None)

    def test_rescheduling_does_not_accumulate_stale_wakeups(self, env):
        """The cancel-and-rearm pattern leaves no stale heap entries behind
        once the queue drains past them."""
        timer = None
        for _ in range(50):
            if timer is not None:
                timer.cancel()
            timer = env.call_later(1.0, lambda evt: None)
        env.run()
        assert env.processed_events == 1   # only the live timer fired


class TestSettleHook:
    def test_settle_runs_after_same_time_events(self, env):
        order = []
        env.timeout(0.0).add_callback(lambda evt: order.append("event-1"))
        env.settle(lambda evt: order.append("settle"))
        env.timeout(0.0).add_callback(lambda evt: order.append("event-2"))
        env.run()
        # Both zero-delay events precede the settle although one was
        # scheduled after it.
        assert order == ["event-1", "event-2", "settle"]

    def test_settle_coalesces_burst(self, env):
        passes = []
        pending = []

        def request():
            if not pending:
                pending.append(True)
                env.settle(lambda evt: (pending.clear(),
                                        passes.append(env.now)))

        for _ in range(100):
            env.timeout(1.0).add_callback(lambda evt: request())
        env.run()
        assert passes == [1.0]


class TestTriggerChaining:
    def test_trigger_from_untriggered_event_raises(self, env):
        from repro.sim.kernel import SimulationError
        source = env.event()
        target = env.event()
        with pytest.raises(SimulationError, match="untriggered"):
            target.trigger(source)
        # The target stays usable after the error.
        source.succeed("v")
        target.trigger(source)
        assert target.value == "v"

    def test_trigger_copies_failure(self, env):
        source = env.event()
        source.fail(RuntimeError("boom"))
        source.defused = True
        target = env.event()
        target.trigger(source)
        target.defused = True
        assert target.ok is False


class TestDeterministicRepr:
    """Event reprs use a per-environment sequence, never memory addresses."""

    def test_repr_is_sequence_numbered(self, env):
        first = env.event()
        second = env.timeout(1.0)
        assert repr(first) == "<Event pending #1>"
        assert "#2" in repr(second)
        assert "0x" not in repr(first) + repr(second)

    def test_repr_identical_across_fresh_environments(self):
        def script(environment):
            environment.timeout(1.0)
            evt = environment.event()
            evt.succeed("v")
            environment.run(until=2.0)
            return repr(evt)

        assert script(Environment()) == script(Environment())

    def test_event_ids_do_not_perturb_scheduling_order(self, env):
        # Reprs draw from a counter separate from the (time, priority, seq)
        # tiebreaker, so inspecting events must not reorder execution.
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        a = env.process(proc("a"))
        repr(a)  # touching the repr must be side-effect free
        env.process(proc("b"))
        env.run()
        assert order == ["a", "b"]
