"""Unit tests for the storage substrate (database, persistence, filesystem)."""

import pytest

from repro.storage.database import (
    ConnectionPool,
    Database,
    DatabaseError,
    EmbeddedSQLEngine,
    NetworkedSQLEngine,
)
from repro.storage.filesystem import FileContent, LocalFileSystem, StorageFullError
from repro.storage.persistence import PersistenceManager, new_auid, reset_auid_counter


class TestEngines:
    def test_profiles(self):
        mysql = NetworkedSQLEngine()
        hsql = EmbeddedSQLEngine()
        assert mysql.connection_cost_s > hsql.connection_cost_s
        assert mysql.operation_cost_s > hsql.operation_cost_s

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            NetworkedSQLEngine(operation_cost_s=-1)


class TestDatabaseFunctional:
    def test_raw_insert_get_delete(self, env):
        db = Database(env)
        db.raw_insert("t", "k1", {"x": 1})
        assert db.raw_get("t", "k1") == {"x": 1}
        assert db.size("t") == 1
        assert db.raw_delete("t", "k1")
        assert not db.raw_delete("t", "k1")
        assert db.raw_get("t", "k1") is None

    def test_duplicate_insert_rejected(self, env):
        db = Database(env)
        db.raw_insert("t", "k", 1)
        with pytest.raises(DatabaseError):
            db.raw_insert("t", "k", 2)

    def test_upsert_overwrites(self, env):
        db = Database(env)
        db.raw_upsert("t", "k", 1)
        db.raw_upsert("t", "k", 2)
        assert db.raw_get("t", "k") == 2

    def test_query_with_predicate(self, env):
        db = Database(env)
        for i in range(10):
            db.raw_insert("nums", str(i), i)
        evens = db.raw_query("nums", lambda v: v % 2 == 0)
        assert sorted(evens) == [0, 2, 4, 6, 8]
        assert len(db.raw_query("nums")) == 10

    def test_snapshot_isolation(self, env):
        db = Database(env)
        obj = {"nested": [1, 2, 3]}
        db.raw_insert("t", "k", obj)
        obj["nested"].append(4)
        assert db.raw_get("t", "k") == {"nested": [1, 2, 3]}

    def test_copy_objects_false_shares_reference(self, env):
        db = Database(env, copy_objects=False)
        obj = {"nested": [1]}
        db.raw_insert("t", "k", obj)
        obj["nested"].append(2)
        assert db.raw_get("t", "k") == {"nested": [1, 2]}


class TestDatabaseCosts:
    def test_operation_pays_engine_costs_without_pool(self, env, drive):
        engine = EmbeddedSQLEngine(operation_cost_s=0.1, connection_cost_s=0.05)
        db = Database(env, engine=engine)
        drive(env, db.insert("t", "k", 1))
        assert env.now == pytest.approx(0.15)
        assert db.operations == 1

    def test_pool_amortises_connection_cost(self, env, drive):
        engine = NetworkedSQLEngine(operation_cost_s=0.1, connection_cost_s=1.0)
        pool = ConnectionPool(env, engine, size=2)
        db = Database(env, engine=engine, pool=pool)

        def client():
            for i in range(3):
                yield from db.insert("t", f"k{i}", i)

        drive(env, client())
        # One connection opened once (1.0) + three operations (0.3).
        assert env.now == pytest.approx(1.3)
        assert pool.connections_opened == 1

    def test_database_serialises_concurrent_statements(self, env):
        engine = EmbeddedSQLEngine(operation_cost_s=0.1, connection_cost_s=0.0)
        db = Database(env, engine=engine)

        def client(i):
            yield from db.insert("t", f"k{i}", i)

        procs = [env.process(client(i)) for i in range(5)]
        env.run(until=env.all_of(procs))
        assert env.now == pytest.approx(0.5)

    def test_statement_multiplier(self, env, drive):
        engine = EmbeddedSQLEngine(operation_cost_s=0.1, connection_cost_s=0.0)
        db = Database(env, engine=engine)
        drive(env, db.execute(lambda: None, statements=4))
        assert env.now == pytest.approx(0.4)

    def test_invalid_statements_rejected(self, env):
        db = Database(env)
        with pytest.raises(ValueError):
            next(db.execute(lambda: None, statements=0))

    def test_pool_validation(self, env):
        with pytest.raises(ValueError):
            ConnectionPool(env, EmbeddedSQLEngine(), size=0)


class TestPersistence:
    def test_auid_unique(self):
        auids = {new_auid() for _ in range(100)}
        assert len(auids) == 100

    def test_auid_deterministic_with_label_after_reset(self):
        reset_auid_counter()
        first = [new_auid("x") for _ in range(3)]
        reset_auid_counter()
        second = [new_auid("x") for _ in range(3)]
        assert first == second

    def test_make_persistent_requires_uid(self, env):
        pm = PersistenceManager(Database(env))

        class Thing:
            uid = ""

        with pytest.raises(ValueError):
            pm.make_persistent(Thing())

    def test_round_trip_and_query(self, env):
        pm = PersistenceManager(Database(env, copy_objects=False))

        class Item:
            def __init__(self, uid, value):
                self.uid = uid
                self.value = value

        items = [Item(new_auid(), i) for i in range(5)]
        for item in items:
            pm.make_persistent(item)
        assert pm.count(Item) == 5
        assert pm.get_by_uid(Item, items[2].uid).value == 2
        big = pm.query(Item, lambda it: it.value >= 3)
        assert sorted(i.value for i in big) == [3, 4]
        assert pm.delete_persistent(items[0])
        assert pm.count(Item) == 4

    def test_sim_variants_pay_cost(self, env, drive):
        engine = EmbeddedSQLEngine(operation_cost_s=0.2, connection_cost_s=0.0)
        pm = PersistenceManager(Database(env, engine=engine, copy_objects=False))

        class Item:
            def __init__(self):
                self.uid = new_auid()

        item = Item()
        drive(env, pm.make_persistent_sim(item))
        assert env.now == pytest.approx(0.2)
        found = drive(env, pm.get_by_uid_sim(Item, item.uid))
        assert found is item


class TestFileContent:
    def test_from_seed_is_deterministic(self):
        a = FileContent.from_seed("f.bin", 10)
        b = FileContent.from_seed("f.bin", 10)
        assert a.checksum == b.checksum
        assert a.verify(b)

    def test_different_seed_different_checksum(self):
        a = FileContent.from_seed("f.bin", 10, seed="one")
        b = FileContent.from_seed("f.bin", 10, seed="two")
        assert not a.verify(b)

    def test_from_bytes(self):
        content = FileContent.from_bytes("x.txt", b"hello world")
        assert content.size_mb == pytest.approx(11 / (1024 * 1024))
        assert content.payload == b"hello world"

    def test_corrupted_copy_detected(self):
        content = FileContent.from_seed("f.bin", 10)
        assert not content.verify(content.corrupted())

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileContent("f", -1, "abc")


class TestLocalFileSystem:
    def test_write_read_delete(self):
        fs = LocalFileSystem()
        content = FileContent.from_seed("a.bin", 5)
        fs.write("dir/a.bin", content)
        assert fs.exists("dir/a.bin")
        assert "dir/a.bin" in fs
        assert fs.read("dir/a.bin").verify(content)
        assert fs.delete("dir/a.bin")
        assert not fs.delete("dir/a.bin")
        with pytest.raises(FileNotFoundError):
            fs.read("dir/a.bin")

    def test_capacity_enforced(self):
        fs = LocalFileSystem(capacity_mb=10)
        fs.write("a", FileContent.from_seed("a", 6))
        with pytest.raises(StorageFullError):
            fs.write("b", FileContent.from_seed("b", 6))
        assert fs.used_mb == pytest.approx(6)
        assert fs.free_mb == pytest.approx(4)

    def test_overwrite_counts_delta(self):
        fs = LocalFileSystem(capacity_mb=10)
        fs.write("a", FileContent.from_seed("a", 8))
        # Overwriting with a smaller file must succeed.
        fs.write("a", FileContent.from_seed("a-small", 2))
        assert fs.used_mb == pytest.approx(2)

    def test_purge(self):
        fs = LocalFileSystem()
        for i in range(4):
            fs.write(f"f{i}", FileContent.from_seed(f"f{i}", 1))
        assert len(fs) == 4
        assert fs.purge() == 4
        assert len(fs) == 0

    def test_list_paths_sorted(self):
        fs = LocalFileSystem()
        for name in ("b", "a", "c"):
            fs.write(name, FileContent.from_seed(name, 1))
        assert fs.list_paths() == ["a", "b", "c"]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LocalFileSystem(capacity_mb=0)

    def test_fits(self):
        fs = LocalFileSystem(capacity_mb=5)
        assert fs.fits(FileContent.from_seed("x", 5))
        assert not fs.fits(FileContent.from_seed("x", 6))
