"""Unit tests for data life-cycle events and the event bus."""

import pytest

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.events import (
    ActiveDataEventHandler,
    DataEventType,
    EventBus,
)


class Recorder(ActiveDataEventHandler):
    def __init__(self):
        self.calls = []

    def on_data_create_event(self, data, attribute):
        self.calls.append(("create", data.name, attribute.name))

    def on_data_copy_event(self, data, attribute):
        self.calls.append(("copy", data.name, attribute.name))

    def on_data_delete_event(self, data, attribute):
        self.calls.append(("delete", data.name, attribute.name))


class CamelCaseRecorder(ActiveDataEventHandler):
    """Uses the paper-style onDataCopyEvent override."""

    def __init__(self):
        self.copied = []

    def onDataCopyEvent(self, data, attribute):  # noqa: N802
        self.copied.append(data.name)


class TestEventBus:
    def test_dispatch_reaches_all_handlers(self):
        bus = EventBus("host1")
        a, b = Recorder(), Recorder()
        bus.add_handler(a)
        bus.add_handler(b)
        data = Data(name="d")
        attr = Attribute(name="attr")
        bus.dispatch(DataEventType.COPY, data, attr, time=1.0)
        assert a.calls == [("copy", "d", "attr")]
        assert b.calls == [("copy", "d", "attr")]
        assert bus.handler_count == 2

    def test_all_three_event_types(self):
        bus = EventBus("host1")
        recorder = Recorder()
        bus.add_handler(recorder)
        data = Data(name="d")
        attr = Attribute(name="a")
        for event_type in (DataEventType.CREATE, DataEventType.COPY,
                           DataEventType.DELETE):
            bus.dispatch(event_type, data, attr, time=0.0)
        assert [c[0] for c in recorder.calls] == ["create", "copy", "delete"]

    def test_camelcase_override_still_called(self):
        bus = EventBus("host1")
        recorder = CamelCaseRecorder()
        bus.add_handler(recorder)
        bus.dispatch(DataEventType.COPY, Data(name="x"), Attribute(), 0.0)
        assert recorder.copied == ["x"]

    def test_remove_handler(self):
        bus = EventBus("host1")
        recorder = Recorder()
        bus.add_handler(recorder)
        bus.remove_handler(recorder)
        bus.remove_handler(recorder)  # idempotent
        bus.dispatch(DataEventType.COPY, Data(name="x"), Attribute(), 0.0)
        assert recorder.calls == []

    def test_handler_type_enforced(self):
        bus = EventBus("host1")
        with pytest.raises(TypeError):
            bus.add_handler(lambda data, attr: None)

    def test_history_and_filtering(self):
        bus = EventBus("host1")
        data = Data(name="d")
        attr = Attribute()
        bus.dispatch(DataEventType.CREATE, data, attr, time=1.0)
        bus.dispatch(DataEventType.COPY, data, attr, time=2.0)
        bus.dispatch(DataEventType.COPY, data, attr, time=3.0)
        assert len(bus.history) == 3
        copies = bus.events_of(DataEventType.COPY)
        assert [e.time for e in copies] == [2.0, 3.0]
        assert copies[0].host_name == "host1"

    def test_base_handler_methods_are_noops(self):
        handler = ActiveDataEventHandler()
        handler.onDataCreateEvent(Data(name="x"), Attribute())
        handler.onDataCopyEvent(Data(name="x"), Attribute())
        handler.onDataDeleteEvent(Data(name="x"), Attribute())
