"""Unit tests for the Data Transfer service and the service container."""

import pytest

from repro.core.data import Data
from repro.core.exceptions import TransferAbortedError
from repro.net.flows import Network
from repro.net.host import Host
from repro.net.rpc import ChannelKind
from repro.net.topology import cluster_topology
from repro.services.container import ServiceContainer
from repro.services.data_transfer import DataTransferService
from repro.storage.database import NetworkedSQLEngine
from repro.storage.filesystem import FileContent, LocalFileSystem
from repro.transfer.oob import TransferEndpoint
from repro.transfer.registry import default_registry


@pytest.fixture
def dt_platform(env):
    network = Network(env, default_latency_s=0.001)
    server = network.add_host(Host("server", uplink_mbps=100, downlink_mbps=100,
                                   stable=True))
    worker = network.add_host(Host("worker", uplink_mbps=100, downlink_mbps=100))
    registry = default_registry(env, network)
    dt = DataTransferService(env, server, network, registry,
                             monitor_period_s=0.5, max_retries=2)
    server_fs = LocalFileSystem(owner="server")
    content = FileContent.from_seed("file.bin", 20)
    server_fs.write("file.bin", content)
    data = Data.from_content(content)
    source = TransferEndpoint(server, server_fs, "file.bin")
    destination = TransferEndpoint(worker, LocalFileSystem(owner="worker"),
                                   "cache/file.bin")
    return dt, data, source, destination, worker, network


class TestDataTransferService:
    def test_submit_completes_and_reports(self, env, dt_platform, drive):
        dt, data, source, destination, worker, network = dt_platform
        record = drive(env, dt.submit(data, "ftp", source, destination))
        assert record.completed_at is not None
        assert record.attempts == 1
        assert destination.read().verify(source.read())
        assert dt.total_mb_moved == pytest.approx(20)
        assert dt.monitor_messages >= 2
        report = dt.bandwidth_report()
        assert report["transfers"] == 1
        assert report["mean_throughput_mbps"] > 0
        assert dt.pending_transfers() == []

    def test_completion_detected_at_monitor_granularity(self, env, dt_platform, drive):
        dt, data, source, destination, worker, network = dt_platform
        drive(env, dt.submit(data, "ftp", source, destination))
        # 20 MB at 100 MB/s is ~0.2 s + overheads, but the DT only notices at
        # a monitor poll (every 0.5 s): completion time is a poll multiple.
        assert env.now >= 0.5

    def test_register_then_start(self, env, dt_platform, drive):
        dt, data, source, destination, worker, network = dt_platform
        record = dt.register_transfer(data, "http", source, destination)
        assert record in dt.pending_transfers()
        drive(env, dt.start(record))
        assert record.completed_at is not None

    def test_failure_after_retries_raises(self, env, dt_platform):
        dt, data, source, destination, worker, network = dt_platform
        bogus_source = TransferEndpoint(source.host, LocalFileSystem(), "missing.bin")
        record = dt.register_transfer(data, "ftp", bogus_source, destination)
        process = env.process(dt.start(record))
        with pytest.raises(TransferAbortedError):
            env.run(until=process)
        assert record.failed

    def test_receiver_crash_cancels_without_retry_storm(self, env, dt_platform):
        dt, data, source, destination, worker, network = dt_platform
        record = dt.register_transfer(data, "ftp", source, destination)
        process = env.process(dt.start(record))

        def crash():
            yield env.timeout(0.05)
            worker.fail()

        env.process(crash())
        with pytest.raises(TransferAbortedError):
            env.run(until=process)
        assert record.failed
        assert record.attempts <= 2

    def test_monitor_bandwidth_reserved_and_released(self, env, dt_platform, drive):
        dt, data, source, destination, worker, network = dt_platform
        assert network._background == {}
        drive(env, dt.submit(data, "ftp", source, destination))
        # All reservations released after completion.
        assert network._background == {}

    def test_monitor_bandwidth_accounting_disabled(self, env):
        network = Network(env)
        server = network.add_host(Host("s", stable=True))
        registry = default_registry(env, network)
        dt = DataTransferService(env, server, network, registry,
                                 account_monitor_bandwidth=False)
        dt._reserve_monitor_bandwidth()
        assert network._background == {}


class TestServiceContainer:
    def test_builds_all_services(self, env):
        topo = cluster_topology(env, n_workers=2)
        container = ServiceContainer(env, topo.service_host, topo.network)
        endpoints = container.endpoints()
        assert set(endpoints) == {"dc", "dr", "dt", "ds"}
        assert endpoints["dc"].host is topo.service_host
        assert container.database is container.data_catalog.database
        container.start()
        container.start()  # idempotent
        container.stop()

    def test_requires_stable_host(self, env):
        topo = cluster_topology(env, n_workers=1)
        with pytest.raises(ValueError):
            ServiceContainer(env, topo.worker_hosts[0], topo.network)

    def test_engine_and_pool_configuration(self, env):
        topo = cluster_topology(env, n_workers=1)
        container = ServiceContainer(env, topo.service_host, topo.network,
                                     engine=NetworkedSQLEngine(),
                                     use_connection_pool=False)
        assert container.database.engine.name == "mysql"
        assert container.database.pool is None

    def test_channel_factory(self, env):
        topo = cluster_topology(env, n_workers=1)
        container = ServiceContainer(env, topo.service_host, topo.network)
        channel = container.channel(ChannelKind.RMI_LOCAL)
        assert channel.kind is ChannelKind.RMI_LOCAL
