"""The pluggable event schedulers: heap vs calendar queue equivalence.

The kernel's correctness contract is a total order over ``(time, priority,
seq)``; any scheduler must realise it exactly.  These tests pin that
equivalence three ways: structurally (random push/cancel/pop interleavings
against both queues), at kernel level (random timer workloads through
``Environment(scheduler=...)`` must produce identical firing traces), and
through :class:`OracleScheduler`, which asserts agreement pop by pop.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Environment
from repro.sim.scheduler import (
    ArrayCalendarScheduler,
    CalendarQueueScheduler,
    HeapScheduler,
    OracleScheduler,
    make_scheduler,
)

common_settings = settings(max_examples=60, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


class _Stub:
    """Stands in for a kernel Event/Timer: only ``cancelled`` matters."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False


# ---------------------------------------------------------------------------
# Structural equivalence: random op sequences against both queues
# ---------------------------------------------------------------------------

# Coarse timestamps make same-time collisions (the interesting case for a
# bucketed queue) common rather than measure-zero.
op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["push", "push", "push", "pop", "cancel"]),
        st.integers(min_value=0, max_value=12),   # time (coarse)
        st.integers(min_value=0, max_value=2),    # priority
        st.integers(min_value=0, max_value=10_000),  # cancel victim pick
    ),
    min_size=1, max_size=200)


def _drive(ops, make_candidate):
    """Interleave ops on a reference heap and a candidate; compare pops."""
    reference = HeapScheduler()
    candidate = make_candidate()
    seq = 0
    pending = []
    popped = []
    for kind, coarse_time, priority, pick in ops:
        if kind == "push":
            entry = (coarse_time / 4.0, priority, seq, _Stub())
            seq += 1
            pending.append(entry)
            reference.push(entry)
            candidate.push(entry)
        elif kind == "cancel":
            live = [e for e in pending if not e[3].cancelled]
            if live:
                live[pick % len(live)][3].cancelled = True
                reference.note_cancelled()
                candidate.note_cancelled()
        else:  # pop
            assert candidate.peek() is reference.peek()
            try:
                expected = reference.pop()
            except IndexError:
                with pytest.raises(IndexError):
                    candidate.pop()
                continue
            assert candidate.pop() is expected
            pending.remove(expected)
            popped.append(expected)
    # Drain: the tails must agree too, and the drain (no intervening
    # pushes any more) must come out in full-key order.
    drain = []
    while True:
        try:
            expected = reference.pop()
        except IndexError:
            with pytest.raises(IndexError):
                candidate.pop()
            break
        assert candidate.pop() is expected
        drain.append(expected)
    keys = [e[:3] for e in drain]
    assert keys == sorted(keys)
    assert not any(e[3].cancelled for e in popped + drain)


@common_settings
@given(ops=op_strategy)
def test_calendar_pop_order_matches_heap(ops):
    _drive(ops, CalendarQueueScheduler)


@common_settings
@given(ops=op_strategy)
def test_array_calendar_pop_order_matches_heap(ops):
    _drive(ops, ArrayCalendarScheduler)


@common_settings
@given(ops=op_strategy,
       width=st.sampled_from([0.1, 0.25, 1.0, 7.0, 1000.0]))
def test_calendar_order_is_width_independent(ops, width):
    """Any pinned bucket width realises the same total order."""
    _drive(ops, lambda: CalendarQueueScheduler(width=width))


@common_settings
@given(ops=op_strategy,
       width=st.sampled_from([0.1, 0.25, 1.0, 7.0, 1000.0]))
def test_array_order_is_width_independent(ops, width):
    """Extreme widths drive all traffic through the merge heap (wide) or
    one bucket per instant (narrow); the order must not care."""
    _drive(ops, lambda: ArrayCalendarScheduler(width=width))


# ---------------------------------------------------------------------------
# Kernel-level equivalence: timer workloads through Environment
# ---------------------------------------------------------------------------

delay_strategy = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0, 1.5, 2.0, 5.0])

timer_workload = st.tuples(
    st.lists(delay_strategy, min_size=1, max_size=30),        # timer delays
    st.lists(st.tuples(delay_strategy,                        # cancel at
                       st.integers(min_value=0, max_value=29)),  # victim
             max_size=10),
)


def _run_timer_workload(scheduler, timers, cancels):
    env = Environment(scheduler=scheduler)
    trace = []
    handles = [
        env.call_later(delay,
                       lambda _ev, i=i: trace.append((env.now, i)))
        for i, delay in enumerate(timers)
    ]

    def canceller():
        for delay, victim in cancels:
            yield env.timeout(delay)
            handles[victim % len(handles)].cancel()

    if cancels:
        env.process(canceller())
    env.run()
    return trace, env.processed_events


@common_settings
@given(workload=timer_workload)
def test_kernel_trace_identical_across_schedulers(workload):
    timers, cancels = workload
    heap_trace = _run_timer_workload("heap", timers, cancels)
    calendar_trace = _run_timer_workload("calendar", timers, cancels)
    array_trace = _run_timer_workload("array", timers, cancels)
    assert calendar_trace == heap_trace
    assert array_trace == heap_trace


@common_settings
@given(workload=timer_workload,
       scheduler=st.sampled_from(["oracle", "oracle-array"]))
def test_oracle_certifies_timer_workloads(workload, scheduler):
    timers, cancels = workload
    env = Environment(scheduler=scheduler)
    handles = [env.call_later(delay, lambda _ev: None) for delay in timers]

    def canceller():
        for delay, victim in cancels:
            yield env.timeout(delay)
            handles[victim % len(handles)].cancel()

    if cancels:
        env.process(canceller())
    env.run()  # OracleScheduler raises AssertionError on any divergence
    assert env.scheduler.agreements == env.processed_events


# ---------------------------------------------------------------------------
# Cancelled-timer residency: compaction keeps corpses from squatting
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["heap", "calendar", "array"])
def test_cancelled_timers_are_compacted_away(name):
    env = Environment(scheduler=name)
    live = env.call_later(100.0, lambda _ev: None)
    corpses = [env.call_later(float(i + 1), lambda _ev: None)
               for i in range(500)]
    for timer in corpses:
        timer.cancel()
    # More than half the queue was cancelled: at least one compaction ran
    # and the structure no longer carries ~500 dead entries.
    assert env.scheduler.compactions >= 1
    assert len(env.scheduler) <= 2
    env.run()
    assert live.cancelled is False
    assert env.now == 100.0


@pytest.mark.parametrize("name", ["heap", "calendar", "array"])
def test_cancel_rearm_storm_processes_once(name):
    """The kernel's timer-reschedule pattern stays O(live) per scheduler."""
    env = Environment(scheduler=name)
    fired = []
    timer = env.call_later(1.0, lambda _ev: fired.append(env.now))
    for i in range(50):
        timer.cancel()
        timer = env.call_later(1.0 + i * 1e-3, lambda _ev: fired.append(env.now))
    env.run()
    assert fired == [1.0 + 49 * 1e-3]
    assert env.processed_events == 1


def test_double_cancel_counts_once():
    env = Environment(scheduler="heap")
    env.call_later(0.5, lambda _ev: None)  # keep the queue half live
    timer = env.call_later(1.0, lambda _ev: None)
    assert timer.cancel() is True
    assert timer.cancel() is True   # cancelling twice is idempotent...
    assert env.scheduler._cancelled == 1  # ...and accounted once


# ---------------------------------------------------------------------------
# Calendar-queue internals: adaptive width and the resize backoff
# ---------------------------------------------------------------------------

def test_calendar_resizes_when_one_bucket_overflows():
    sched = CalendarQueueScheduler()  # width 1.0, auto
    stub = _Stub()
    n = CalendarQueueScheduler.RESIZE_INTERVAL + 10
    for i in range(n):
        # All in bucket 0 of the initial width, but with distinct
        # timestamps, so a narrower width genuinely helps.
        sched.push((i / (2.0 * n), 1, i, stub))
    assert sched.resizes >= 1
    assert sched.bucket_count > 1
    assert sched.width < 1.0
    keys = [sched.pop()[:3] for _ in range(len(sched))]
    assert keys == sorted(keys)


def test_calendar_same_timestamp_storm_backs_off():
    """Re-bucketing cannot spread identical timestamps.  The backoff makes
    rebuild attempts geometric in the live count (one per doubling) instead
    of one O(n) rebuild every RESIZE_INTERVAL pushes — O(n log n) total
    work on a same-time storm rather than O(n^2 / RESIZE_INTERVAL)."""
    sched = CalendarQueueScheduler()
    stub = _Stub()
    interval = CalendarQueueScheduler.RESIZE_INTERVAL
    n = interval * 16
    for i in range(n):
        sched.push((7.0, 1, i, stub))
    # Without backoff: one rebuild per interval = n / interval = 16.
    # With it: one per doubling of the live count = log2(16) + 1 = 5.
    assert sched.resizes <= 6
    assert sched._resize_backoff_live > 0
    assert len(sched) == n
    assert sched.pop()[:3] == (7.0, 1, 0)


def test_calendar_pinned_width_never_resizes():
    sched = CalendarQueueScheduler(width=0.5)
    stub = _Stub()
    for i in range(CalendarQueueScheduler.RESIZE_INTERVAL * 2):
        sched.push((float(i % 3), 1, i, stub))
    assert sched.resizes == 0
    assert sched.width == 0.5


def test_calendar_rejects_bad_width():
    with pytest.raises(ValueError):
        CalendarQueueScheduler(width=0.0)
    with pytest.raises(ValueError):
        CalendarQueueScheduler(width=-1.0)


@pytest.mark.parametrize("cls", [CalendarQueueScheduler,
                                 ArrayCalendarScheduler])
def test_storm_compaction_arms_the_resize_backoff(cls):
    """Regression: cancelling into a same-timestamp storm must not chain
    an O(n) compaction sweep into futile O(n) width rebuilds.  The
    compaction detects the single-timestamp population and arms the
    adaptation backoff directly."""
    sched = cls()
    interval = cls.RESIZE_INTERVAL
    stubs = [_Stub() for _ in range(interval - 1)]
    for i, stub in enumerate(stubs):
        sched.push((7.0, 1, i, stub))
    resizes_before = sched.resizes
    # Cancel just over half the queue: note_cancelled triggers compact().
    for stub in stubs[: interval // 2 + 1]:
        stub.cancelled = True
        sched.note_cancelled()
    assert sched.compactions >= 1
    live = sched._size - sched._cancelled
    assert live == interval - 1 - (interval // 2 + 1)
    assert sched._resize_backoff_live >= live * 2
    # The adaptation window right after the compaction early-returns on
    # the armed backoff instead of re-bucketing the un-spreadable storm
    # (retries only resume once the live count doubles — geometric, as
    # pinned by test_calendar_same_timestamp_storm_backs_off).
    next_seq = interval
    for i in range(interval):
        sched.push((7.0, 1, next_seq + i, _Stub()))
    assert sched.resizes == resizes_before
    assert sched.pop()[:3] == (7.0, 1, interval // 2 + 1)


# ---------------------------------------------------------------------------
# Array-calendar internals: sort-on-drain and late-domination width shrink
# ---------------------------------------------------------------------------

class TestArrayCalendarInternals:
    def test_large_bucket_drains_argsorted(self):
        sched = ArrayCalendarScheduler(width=1.0)
        n = ArrayCalendarScheduler.SORT_CROSSOVER * 2
        # One bucket, deliberately shuffled (time, priority, seq) keys.
        entries = [((i * 7919 % n) / (2.0 * n), (i * 31) % 3, i, _Stub())
                   for i in range(n)]
        for entry in entries:
            sched.push(entry)
        keys = [sched.pop()[:3] for _ in range(n)]
        assert keys == sorted(keys)

    def test_small_bucket_falls_back_to_heap(self):
        sched = ArrayCalendarScheduler(width=1.0)
        for i in range(ArrayCalendarScheduler.SORT_CROSSOVER - 1):
            sched.push((0.5 - i * 1e-3, 1, i, _Stub()))
        assert sched.pop()[0] == pytest.approx(
            0.5 - (ArrayCalendarScheduler.SORT_CROSSOVER - 2) * 1e-3)
        # The drained bucket went through the heap path, not the array.
        assert sched._late and not sched._drain

    def test_same_time_followups_merge_into_the_drain(self):
        """Entries pushed into the bucket currently draining (zero-delay
        timeouts) must come out in global order, not after the array."""
        sched = ArrayCalendarScheduler(width=1.0)
        n = ArrayCalendarScheduler.SORT_CROSSOVER * 2
        for i in range(n):
            sched.push((i / (2.0 * n), 1, i, _Stub()))
        first = sched.pop()
        assert first[:3] == (0.0, 1, 0)
        # A follow-up earlier than the array's current head.
        sched.push((first[0], 0, n, _Stub()))
        assert sched.pop()[:3] == (0.0, 0, n)
        keys = [sched.pop()[:3] for _ in range(len(sched))]
        assert keys == sorted(keys)

    def test_late_domination_shrinks_the_width(self):
        """A calendar far wider than the push lookahead routes everything
        through the merge heap; the adaptation must notice (no occupancy
        statistic over the starved future buckets can) and shrink."""
        sched = ArrayCalendarScheduler()          # auto, width 1.0
        interval = ArrayCalendarScheduler.RESIZE_INTERVAL
        sched.push((0.9, 1, 0, _Stub()))
        sched.pop()                               # drain bucket 0 is active
        assert sched._drain_index == 0
        tick = 0.8 / (interval + 10)
        for i in range(interval + 10):
            sched.push((i * tick, 1, i + 1, _Stub()))
        assert sched.resizes >= 1
        assert sched.width <= 1.0 / ArrayCalendarScheduler.LATE_SHRINK
        # The shrink caps future occupancy-driven widening at the old width.
        assert sched._late_width_cap <= 1.0
        keys = [sched.pop()[:3] for _ in range(len(sched))]
        assert keys == sorted(keys)

    def test_width_cap_relaxes_geometrically(self):
        sched = ArrayCalendarScheduler()
        sched._late_width_cap = 0.5
        assert sched._clamp_width(2.0) == 0.5     # clamped...
        assert sched._late_width_cap == 1.0       # ...and the cap doubled
        assert sched._clamp_width(0.25) == 0.25   # under the cap: untouched
        assert sched._late_width_cap == 1.0


# ---------------------------------------------------------------------------
# Wiring: make_scheduler and Environment(scheduler=...)
# ---------------------------------------------------------------------------

def test_make_scheduler_resolves_names():
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("calendar"), CalendarQueueScheduler)
    assert isinstance(make_scheduler("array"), ArrayCalendarScheduler)
    assert isinstance(make_scheduler("oracle"), OracleScheduler)
    oracle_array = make_scheduler("oracle-array")
    assert isinstance(oracle_array, OracleScheduler)
    assert isinstance(oracle_array.candidate, ArrayCalendarScheduler)
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("btree")


def test_environment_accepts_name_and_instance():
    assert Environment(scheduler="calendar").scheduler_name == "calendar"
    assert Environment().scheduler_name == "heap"
    custom = CalendarQueueScheduler(width=0.125)
    env = Environment(scheduler=custom)
    assert env.scheduler is custom
    fired = []
    env.call_later(2.0, lambda _ev: fired.append(env.now))
    env.run()
    assert fired == [2.0]
