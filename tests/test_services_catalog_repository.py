"""Unit tests for the Data Catalog and Data Repository services."""

import pytest

from repro.core.data import Data, DataStatus, Locator
from repro.core.exceptions import DataNotFoundError
from repro.net.host import Host
from repro.services.data_catalog import DataCatalogService
from repro.services.data_repository import DataRepositoryService
from repro.storage.database import Database, EmbeddedSQLEngine
from repro.storage.filesystem import FileContent, LocalFileSystem


@pytest.fixture
def catalog(env):
    return DataCatalogService(Database(env, copy_objects=False))


@pytest.fixture
def repository(env):
    host = Host("service", stable=True)
    return DataRepositoryService(env, host, filesystem=LocalFileSystem(owner="repo"))


class TestDataCatalog:
    def test_register_and_get(self, env, catalog, drive):
        data = Data(name="input.dat", size_mb=3)
        drive(env, catalog.register_data(data))
        fetched = drive(env, catalog.get_data(data.uid))
        assert fetched.name == "input.dat"
        assert catalog.data_count == 1
        assert catalog.requests == 2

    def test_get_missing_raises(self, env, catalog):
        process = env.process(catalog.get_data("no-such-uid"))
        with pytest.raises(DataNotFoundError):
            env.run(until=process)

    def test_find_by_name(self, env, catalog, drive):
        for i in range(3):
            drive(env, catalog.register_data(Data(name="shared.dat")))
        drive(env, catalog.register_data(Data(name="other.dat")))
        matches = drive(env, catalog.find_by_name("shared.dat"))
        assert len(matches) == 3
        assert drive(env, catalog.find_by_name("nothing")) == []

    def test_update_status(self, env, catalog, drive):
        data = Data(name="x")
        drive(env, catalog.register_data(data))
        updated = drive(env, catalog.update_status(data.uid, DataStatus.AVAILABLE))
        assert updated.status is DataStatus.AVAILABLE
        assert catalog.get_data_now(data.uid).status is DataStatus.AVAILABLE

    def test_delete_removes_locators_too(self, env, catalog, drive):
        data = Data(name="x")
        drive(env, catalog.register_data(data))
        drive(env, catalog.add_locator(Locator(data_uid=data.uid, host_name="h",
                                               reference="p")))
        assert len(catalog.locators_for_now(data.uid)) == 1
        assert drive(env, catalog.delete_data(data.uid))
        assert catalog.get_data_now(data.uid) is None
        assert catalog.locators_for_now(data.uid) == []

    def test_locator_listing(self, env, catalog, drive):
        data = Data(name="x")
        drive(env, catalog.register_data(data))
        for host in ("a", "b"):
            drive(env, catalog.add_locator(
                Locator(data_uid=data.uid, host_name=host, reference="p")))
        locators = drive(env, catalog.locators_for(data.uid))
        assert {l.host_name for l in locators} == {"a", "b"}

    def test_key_value_publish_and_lookup(self, env, catalog, drive):
        drive(env, catalog.publish_pair("data-1", "hostA"))
        drive(env, catalog.publish_pair("data-1", "hostB"))
        values = drive(env, catalog.lookup_pair("data-1"))
        assert values == {"hostA", "hostB"}
        assert catalog.lookup_pair_now("data-1") == {"hostA", "hostB"}
        assert drive(env, catalog.lookup_pair("unknown")) == set()

    def test_operations_cost_database_time(self, env, drive):
        engine = EmbeddedSQLEngine(operation_cost_s=0.01, connection_cost_s=0.0)
        catalog = DataCatalogService(Database(env, engine=engine, copy_objects=False))
        drive(env, catalog.register_data(Data(name="x")))
        assert env.now == pytest.approx(0.01)


class TestDataRepository:
    def test_store_and_retrieve(self, repository):
        content = FileContent.from_seed("payload", 10)
        data = Data.from_content(content)
        locator = repository.store_now(data, content)
        assert locator.permanent
        assert locator.host_name == "service"
        assert repository.has(data.uid)
        assert repository.retrieve_now(data.uid).verify(content)
        assert repository.stored_count == 1
        assert repository.used_mb == pytest.approx(10)

    def test_store_rejects_mismatched_content(self, repository):
        content = FileContent.from_seed("payload", 10)
        data = Data(name="payload", size_mb=99, checksum="bogus")
        with pytest.raises(ValueError):
            repository.store_now(data, content)

    def test_retrieve_missing_raises(self, repository):
        with pytest.raises(DataNotFoundError):
            repository.retrieve_now("missing-uid")
        with pytest.raises(DataNotFoundError):
            repository.endpoint_for("missing-uid")

    def test_delete(self, repository):
        content = FileContent.from_seed("payload", 1)
        data = Data.from_content(content)
        repository.store_now(data, content)
        assert repository.delete_now(data.uid)
        assert not repository.delete_now(data.uid)
        assert not repository.has(data.uid)

    def test_describe_protocol(self, env, repository, drive):
        content = FileContent.from_seed("payload", 1)
        data = Data.from_content(content)
        repository.store_now(data, content)
        description = drive(env, repository.describe_protocol(data.uid, "ftp"))
        assert description.protocol == "ftp"
        assert description.host_name == "service"
        default = drive(env, repository.describe_protocol(data.uid))
        assert default.protocol == repository.default_protocol

    def test_describe_protocol_missing_raises(self, env, repository):
        process = env.process(repository.describe_protocol("nope"))
        with pytest.raises(DataNotFoundError):
            env.run(until=process)

    def test_register_upload(self, repository):
        content = FileContent.from_seed("uploaded", 2)
        data = Data.from_content(content)
        # Simulate an out-of-band upload landing at the repository path.
        repository.filesystem.write(repository.path_for(data), content)
        locator = repository.register_upload(data)
        assert locator.permanent
        assert repository.has(data.uid)

    def test_register_upload_missing_or_corrupt(self, repository):
        content = FileContent.from_seed("uploaded", 2)
        data = Data.from_content(content)
        with pytest.raises(DataNotFoundError):
            repository.register_upload(data)
        repository.filesystem.write(repository.path_for(data), content.corrupted())
        with pytest.raises(ValueError):
            repository.register_upload(data)

    def test_endpoint_for(self, repository):
        content = FileContent.from_seed("payload", 1)
        data = Data.from_content(content)
        repository.store_now(data, content)
        endpoint = repository.endpoint_for(data.uid)
        assert endpoint.read().verify(content)
        assert endpoint.host.name == "service"
