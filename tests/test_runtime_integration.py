"""Integration tests: the full BitDew runtime (APIs + services + network)."""

import pytest

from repro.core.attributes import Attribute
from repro.core.data import Data
from repro.core.events import ActiveDataEventHandler, DataEventType
from repro.core.exceptions import BitDewError, DataNotFoundError
from repro.core.runtime import BitDewEnvironment
from repro.net.rpc import ChannelKind
from repro.net.topology import cluster_topology
from repro.sim.kernel import Environment
from repro.storage.filesystem import FileContent
from repro.transfer.oob import TransferState


def build_runtime(env, n_workers=4, **kwargs):
    topo = cluster_topology(env, n_workers=n_workers)
    kwargs.setdefault("sync_period_s", 1.0)
    kwargs.setdefault("monitor_period_s", 0.2)
    runtime = BitDewEnvironment(topo, **kwargs)
    return topo, runtime


class TestBitDewApi:
    def test_create_put_get_roundtrip(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=2)
        master = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        other = runtime.attach(topo.worker_hosts[1], auto_sync=False)
        content = FileContent.from_seed("dataset", 8)

        def master_program():
            data = yield from master.bitdew.create_data("dataset", content=content)
            yield from master.bitdew.put(data, content)
            return data

        data = drive(env, master_program())
        assert runtime.data_catalog.get_data_now(data.uid) is not None
        assert runtime.data_repository.has(data.uid)

        def other_program():
            found = yield from other.bitdew.search_data("dataset")
            fetched = yield from other.bitdew.get(found)
            return found, fetched

        found, fetched = drive(env, other_program())
        assert found.uid == data.uid
        assert fetched.verify(content)
        assert other.has_content(data.uid)

    def test_search_missing_raises(self, env):
        topo, runtime = build_runtime(env, n_workers=1)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        process = env.process(agent.bitdew.search_data("nothing"))
        with pytest.raises(DataNotFoundError):
            env.run(until=process)

    def test_get_unreachable_data_raises(self, env):
        topo, runtime = build_runtime(env, n_workers=1)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        orphan = Data(name="orphan", size_mb=1, checksum="abc")

        def program():
            yield from agent.invoke("dc", "register_data", orphan)
            yield from agent.bitdew.get(orphan)

        process = env.process(program())
        with pytest.raises(DataNotFoundError):
            env.run(until=process)

    def test_non_blocking_get_tracked_by_transfer_manager(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=2)
        master = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        other = runtime.attach(topo.worker_hosts[1], auto_sync=False)
        content = FileContent.from_seed("dataset", 16)

        def publish():
            data = yield from master.bitdew.create_data("dataset", content=content)
            yield from master.bitdew.put(data, content)
            return data

        data = drive(env, publish())

        def consume():
            yield from other.bitdew.get(data, blocking=False)
            state = yield from other.transfer_manager.wait_for(data)
            return state

        state = drive(env, consume())
        assert state is TransferState.COMPLETE
        assert other.has_content(data.uid)
        assert other.transfer_manager.completed == 1

    def test_delete_data_removes_everywhere(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=1)
        master = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        content = FileContent.from_seed("dataset", 2)

        def program():
            data = yield from master.bitdew.create_data("dataset", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(data, Attribute(name="a"))
            yield from master.bitdew.delete_data(data)
            return data

        data = drive(env, program())
        assert runtime.data_catalog.get_data_now(data.uid) is None
        assert runtime.data_scheduler.entry(data.uid) is None
        assert not master.has_local(data.uid)

    def test_publish_search_key_value_through_dht(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=2)
        a = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        b = runtime.attach(topo.worker_hosts[1], auto_sync=False)

        def program():
            yield from a.bitdew.publish("checkpoint-sig", "0xdeadbeef")
            values = yield from b.bitdew.search("checkpoint-sig")
            return values

        assert drive(env, program()) == {"0xdeadbeef"}

    def test_create_attribute_from_string_and_dict(self, env):
        topo, runtime = build_runtime(env, n_workers=1)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        attr1 = agent.bitdew.create_attribute("attr x = {replica = 3, oob = ftp}")
        assert attr1.replica == 3 and attr1.protocol == "ftp"
        attr2 = agent.bitdew.create_attribute({"name": "y", "replica": 2})
        assert attr2.replica == 2
        attr3 = agent.active_data.create_attribute(attr2)
        assert attr3 is attr2


class CopyCounter(ActiveDataEventHandler):
    def __init__(self):
        self.copies = []
        self.deletes = []

    def on_data_copy_event(self, data, attribute):
        self.copies.append(data.name)

    def on_data_delete_event(self, data, attribute):
        self.deletes.append(data.name)


class TestSchedulingIntegration:
    def test_replicate_to_all_reaches_every_worker(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=4)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("blob", 10)

        def publish():
            data = yield from master.bitdew.create_data("blob", content=content)
            yield from master.bitdew.put(data, content)
            attr = Attribute(name="everywhere", replica=-1, protocol="ftp")
            yield from master.active_data.schedule(data, attr)
            return data

        data = drive(env, publish())
        agents = runtime.attach_all()
        handlers = {}
        for agent in agents:
            handler = CopyCounter()
            handlers[agent.host.name] = handler
            agent.active_data.add_callback(handler)
        runtime.run(until=60)
        for agent in agents:
            assert agent.has_content(data.uid), agent.host.name
            assert handlers[agent.host.name].copies == ["blob"]
        assert len(runtime.data_scheduler.owners_of(data.uid)) == 4
        # Every worker published its replica in the distributed catalog.
        assert runtime.ddc.owners(data.uid) == {a.host.name for a in agents}

    def test_replica_count_respected(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=5)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("blob", 4)

        def publish():
            data = yield from master.bitdew.create_data("blob", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(
                data, Attribute(name="twice", replica=2, protocol="http"))
            return data

        data = drive(env, publish())
        workers = runtime.attach_all()
        runtime.run(until=60)
        holders = [a for a in workers if a.has_content(data.uid)]
        assert len(holders) == 2
        assert len(runtime.data_scheduler.owners_of(data.uid)) == 2

    def test_lifetime_expiry_triggers_delete_events(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=2)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("ephemeral", 2)

        def publish():
            data = yield from master.bitdew.create_data("ephemeral", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(
                data, Attribute(name="short", replica=-1, protocol="http",
                                absolute_lifetime=15.0))
            return data

        data = drive(env, publish())
        agents = runtime.attach_all()
        handlers = {}
        for agent in agents:
            handler = CopyCounter()
            handlers[agent.host.name] = handler
            agent.active_data.add_callback(handler)
        runtime.run(until=60)
        for agent in agents:
            assert not agent.has_local(data.uid)
            assert handlers[agent.host.name].deletes == ["ephemeral"]

    def test_fault_tolerant_replica_repair_end_to_end(self, env, drive):
        topo, runtime = build_runtime(env, n_workers=4, heartbeat_period_s=1.0)
        master = runtime.attach(topo.service_host, auto_sync=False)
        content = FileContent.from_seed("precious", 4)

        def publish():
            data = yield from master.bitdew.create_data("precious", content=content)
            yield from master.bitdew.put(data, content)
            yield from master.active_data.schedule(
                data, Attribute(name="ft", replica=2, fault_tolerance=True,
                                protocol="http"))
            return data

        data = drive(env, publish())
        workers = runtime.attach_all()
        runtime.run(until=30)
        holders = [a for a in workers if a.has_content(data.uid)]
        assert len(holders) == 2
        victim = holders[0]
        runtime.crash_host(victim.host)
        runtime.run(until=env.now + 40)
        live_holders = [a for a in workers
                        if a.host.online and a.has_content(data.uid)]
        assert len(live_holders) == 2
        assert victim.host.name not in {a.host.name for a in live_holders}

    def test_attach_detach_and_agent_lookup(self, env):
        topo, runtime = build_runtime(env, n_workers=2)
        agent = runtime.attach(topo.worker_hosts[0])
        assert runtime.agent(topo.worker_hosts[0]) is agent
        assert runtime.agent(topo.worker_hosts[0].name) is agent
        # Re-attaching an online host returns the same agent.
        assert runtime.attach(topo.worker_hosts[0]) is agent
        runtime.detach(topo.worker_hosts[0])
        with pytest.raises(BitDewError):
            runtime.agent(topo.worker_hosts[0].name)

    def test_local_channel_for_service_host_agent(self, env):
        topo, runtime = build_runtime(env, n_workers=1)
        service_agent = runtime.attach(topo.service_host, auto_sync=False)
        worker_agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        assert service_agent.channel.kind is ChannelKind.LOCAL
        assert worker_agent.channel.kind is ChannelKind.RMI_REMOTE
