"""Tests for the future-work extensions: collectives, MapReduce, checkpoints."""

import pytest

from repro.apps.checkpointing import CheckpointManager
from repro.apps.mapreduce import MapReduceJob, word_count_map, word_count_reduce
from repro.core.collectives import DataCollectives, slice_content
from repro.core.exceptions import DataNotFoundError
from repro.core.runtime import BitDewEnvironment
from repro.net.topology import cluster_topology
from repro.storage.filesystem import FileContent


def build(env, n_workers=4, **kwargs):
    topo = cluster_topology(env, n_workers=n_workers)
    kwargs.setdefault("sync_period_s", 1.0)
    kwargs.setdefault("monitor_period_s", 0.2)
    kwargs.setdefault("max_data_schedule", 8)
    return topo, BitDewEnvironment(topo, **kwargs)


class TestSliceContent:
    def test_logical_slicing_divides_size(self):
        content = FileContent.from_seed("big.bin", 100)
        slices = slice_content(content, 4)
        assert len(slices) == 4
        assert sum(s.size_mb for s in slices) == pytest.approx(100)
        assert len({s.checksum for s in slices}) == 4

    def test_payload_slicing_preserves_bytes(self):
        payload = b"0123456789" * 7
        content = FileContent.from_bytes("data.txt", payload)
        slices = slice_content(content, 3)
        assert b"".join(s.payload for s in slices) == payload

    def test_invalid_slice_count(self):
        with pytest.raises(ValueError):
            slice_content(FileContent.from_seed("x", 1), 0)


class TestCollectives:
    def test_broadcast_reaches_all_workers(self, env, drive):
        topo, runtime = build(env, n_workers=4)
        master = runtime.attach(topo.service_host, auto_sync=False)
        collectives = DataCollectives(master, protocol="ftp")
        content = FileContent.from_seed("model.bin", 8)

        def program():
            data = yield from master.bitdew.create_data("model.bin", content=content)
            yield from master.bitdew.put(data, content)
            yield from collectives.broadcast(data, protocol="ftp")
            return data

        data = drive(env, program())
        workers = runtime.attach_all()
        runtime.run(until=60)
        assert all(agent.has_content(data.uid) for agent in workers)

    def test_scatter_routes_each_slice_to_its_target(self, env, drive):
        topo, runtime = build(env, n_workers=3)
        master = runtime.attach(topo.service_host, auto_sync=False)
        workers = runtime.attach_all()
        collectives = DataCollectives(master, protocol="http")
        content = FileContent.from_seed("input.bin", 12)

        def program():
            slices = yield from collectives.create_slices("input.bin", content, 3)
            plan = yield from collectives.scatter(slices, workers)
            return slices, plan

        slices, plan = drive(env, program())
        runtime.run(until=60)
        # Each worker holds exactly the slice addressed to it.
        for data in slices:
            target = plan.host_of(data.uid)
            assert target is not None
            for agent in workers:
                holds = agent.has_content(data.uid)
                assert holds == (agent.host.name == target), (
                    f"{agent.host.name} holding {data.name} (target {target})")

    def test_scatter_requires_targets(self, env, drive):
        topo, runtime = build(env, n_workers=1)
        master = runtime.attach(topo.service_host, auto_sync=False)
        collectives = DataCollectives(master)

        def program():
            yield from collectives.scatter([], [])

        process = env.process(program())
        with pytest.raises(ValueError):
            env.run(until=process)

    def test_gather_collects_worker_contributions(self, env, drive):
        topo, runtime = build(env, n_workers=3)
        master = runtime.attach(topo.service_host, auto_sync=True)
        workers = runtime.attach_all()
        collectives = DataCollectives(master, protocol="http")

        def master_setup():
            yield from collectives.open_collector("results")

        drive(env, master_setup())

        def worker_contribution(agent, index):
            content = FileContent.from_bytes(f"result-{index}",
                                             f"payload-{index}".encode())
            data = yield from agent.bitdew.create_data(f"result-{index}",
                                                       content=content)
            yield from collectives.contribute(agent, data, content)

        for index, agent in enumerate(workers):
            env.process(worker_contribution(agent, index))

        def master_wait():
            gathered = yield from collectives.gather_wait(expected=3, poll_s=1.0,
                                                          timeout_s=120.0)
            return gathered

        gathered = drive(env, master_wait())
        assert len(gathered) == 3
        assert {d.name for d in gathered} == {"result-0", "result-1", "result-2"}

    def test_contribute_before_collector_raises(self, env):
        topo, runtime = build(env, n_workers=1)
        master = runtime.attach(topo.service_host, auto_sync=False)
        agent = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        collectives = DataCollectives(master)
        content = FileContent.from_bytes("r", b"x")
        with pytest.raises(RuntimeError):
            next(collectives.contribute(agent, None, content))


class TestMapReduce:
    def test_word_count_end_to_end(self, env):
        topo, runtime = build(env, n_workers=6)
        text = ("the quick brown fox jumps over the lazy dog " * 12
                + "bitdew moves the data so the computation follows " * 8).encode()
        job = MapReduceJob(runtime, master_host=topo.service_host,
                           input_payload=text, n_map_slices=4, n_reducers=2)
        job.assign_workers()
        result = job.run(deadline_s=2000, poll_s=2.0)

        # The distributed result must equal a sequential word count.
        expected = {}
        for word, one in word_count_map(text):
            expected[word] = expected.get(word, 0) + one
        assert result.output == expected
        assert result.map_tasks == 4
        assert result.reduce_tasks == 2
        assert result.intermediate_data >= 2
        assert result.makespan_s > 0

    def test_custom_map_reduce_functions(self, env):
        topo, runtime = build(env, n_workers=4)
        payload = bytes(range(256)) * 8

        def byte_histogram_map(data: bytes):
            for value in data:
                yield ("even" if value % 2 == 0 else "odd"), 1

        job = MapReduceJob(runtime, master_host=topo.service_host,
                           input_payload=payload, n_map_slices=2, n_reducers=2,
                           map_function=byte_histogram_map,
                           reduce_function=word_count_reduce)
        job.assign_workers()
        result = job.run(deadline_s=2000, poll_s=2.0)
        assert result.output == {"even": 1024, "odd": 1024}

    def test_validation(self, env):
        topo, runtime = build(env, n_workers=2)
        with pytest.raises(ValueError):
            MapReduceJob(runtime, topo.service_host, b"x", n_map_slices=0)
        job = MapReduceJob(runtime, topo.service_host, b"x")
        with pytest.raises(ValueError):
            job.assign_workers(hosts=[topo.worker_hosts[0]])


class TestCheckpointing:
    def test_store_restore_roundtrip(self, env, drive):
        topo, runtime = build(env, n_workers=3)
        worker = runtime.attach(topo.worker_hosts[0], auto_sync=True)
        runtime.attach_all(topo.worker_hosts[1:])
        manager = CheckpointManager(worker, application="climate-sim", replica=2)

        def program():
            for sequence in range(3):
                image = FileContent.from_seed(f"state-{sequence}", 4,
                                              seed=f"run:{sequence}")
                yield from manager.store(sequence, image)
            return manager.records

        records = drive(env, program())
        assert len(records) == 3
        runtime.run(until=env.now + 30)

        def restore():
            sequence, content = yield from manager.restore()
            return sequence, content

        sequence, content = drive(env, restore())
        assert sequence == 2
        assert content.checksum == records[2].signature

    def test_checkpoint_replicated_for_fault_tolerance(self, env, drive):
        topo, runtime = build(env, n_workers=4)
        worker = runtime.attach(topo.worker_hosts[0], auto_sync=True)
        runtime.attach_all(topo.worker_hosts[1:])
        manager = CheckpointManager(worker, application="app", replica=2)

        def program():
            image = FileContent.from_seed("state", 4)
            record = yield from manager.store(0, image)
            return record

        record = drive(env, program())
        runtime.run(until=env.now + 30)
        owners = runtime.data_scheduler.owners_of(record.data.uid)
        assert len(owners) >= 2
        entry = runtime.data_scheduler.entry(record.data.uid)
        assert entry.attribute.fault_tolerance

    def test_signature_verification_detects_divergence(self, env, drive):
        topo, runtime = build(env, n_workers=3)
        honest = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        replica = runtime.attach(topo.worker_hosts[1], auto_sync=False)
        saboteur = runtime.attach(topo.worker_hosts[2], auto_sync=False)
        image = FileContent.from_seed("ckpt", 2, seed="good-state")

        manager_a = CheckpointManager(honest, application="sim")
        manager_b = CheckpointManager(replica, application="sim")
        manager_evil = CheckpointManager(saboteur, application="sim")

        def program():
            yield from manager_a.store(0, image)
            yield from manager_b.publish_signature(0, image.checksum)
            yield from manager_evil.publish_signature(0, image.corrupted().checksum)
            good = yield from manager_a.verify(0, image)
            bad = yield from manager_evil.verify(0, image.corrupted())
            return good, bad

        good, bad = drive(env, program())
        assert good.accepted
        assert good.matching == 2 and good.diverging == 1
        assert not bad.accepted or bad.matching <= bad.diverging

    def test_restore_without_checkpoints_raises(self, env):
        topo, runtime = build(env, n_workers=1)
        worker = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        manager = CheckpointManager(worker, application="nothing")
        process = env.process(manager.latest())
        with pytest.raises(DataNotFoundError):
            env.run(until=process)

    def test_invalid_replica(self, env):
        topo, runtime = build(env, n_workers=1)
        worker = runtime.attach(topo.worker_hosts[0], auto_sync=False)
        with pytest.raises(ValueError):
            CheckpointManager(worker, application="x", replica=0)
