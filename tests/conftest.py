"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.net.flows import Network
from repro.net.host import Host


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> RandomStreams:
    return RandomStreams(1234)


@pytest.fixture
def simple_network(env):
    """A tiny network: one server and three workers on a 100 MB/s LAN."""
    network = Network(env, default_latency_s=0.001)
    server = Host("server", cluster="lan", uplink_mbps=100, downlink_mbps=100,
                  stable=True)
    network.add_host(server)
    workers = []
    for i in range(3):
        worker = Host(f"worker{i}", cluster="lan", uplink_mbps=100,
                      downlink_mbps=100)
        network.add_host(worker)
        workers.append(worker)
    return network, server, workers


def run_process(env: Environment, generator):
    """Drive one generator to completion and return its value."""
    process = env.process(generator)
    env.run(until=process)
    return process.value


@pytest.fixture
def drive():
    return run_process
