"""Unit tests for Resource, Container, Store and PriorityStore."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.resources import Container, PriorityStore, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serialises_users(self, env):
        resource = Resource(env, capacity=1)
        log = []

        def user(name):
            with resource.request() as req:
                yield req
                log.append((name, "in", env.now))
                yield env.timeout(2)
                log.append((name, "out", env.now))

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [("a", "in", 0), ("a", "out", 2),
                       ("b", "in", 2), ("b", "out", 4)]

    def test_parallel_users_up_to_capacity(self, env):
        resource = Resource(env, capacity=3)
        finish_times = []

        def user():
            with resource.request() as req:
                yield req
                yield env.timeout(5)
                finish_times.append(env.now)

        for _ in range(6):
            env.process(user())
        env.run()
        assert finish_times == [5, 5, 5, 10, 10, 10]

    def test_count_and_queue_length(self, env):
        resource = Resource(env, capacity=1)

        def holder():
            with resource.request() as req:
                yield req
                yield env.timeout(10)

        def waiter():
            with resource.request() as req:
                yield req

        env.process(holder())
        env.process(waiter())
        env.run(until=1)
        assert resource.count == 1
        assert resource.queue_length == 1

    def test_release_unqueued_request_is_noop(self, env):
        resource = Resource(env, capacity=1)
        request = resource.request()
        env.run()
        resource.release(request)
        resource.release(request)  # second release must not blow up
        assert resource.count == 0

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        env.run()
        assert resource.queue_length == 1
        resource.release(second)           # cancel while still queued
        assert resource.queue_length == 0
        resource.release(first)
        assert resource.count == 0


class TestContainer:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)
        with pytest.raises(ValueError):
            Container(env, capacity=10).put(0)
        with pytest.raises(ValueError):
            Container(env, capacity=10).get(-1)

    def test_put_then_get(self, env):
        container = Container(env, capacity=100, init=10)

        def producer():
            yield container.put(30)

        def consumer():
            amount = yield container.get(25)
            return amount

        env.process(producer())
        p = env.process(consumer())
        env.run()
        assert p.value == 25
        assert container.level == pytest.approx(15)

    def test_get_blocks_until_enough(self, env):
        container = Container(env, capacity=100)
        got = []

        def consumer():
            yield container.get(50)
            got.append(env.now)

        def producer():
            yield env.timeout(5)
            yield container.put(50)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [5]

    def test_put_blocks_at_capacity(self, env):
        container = Container(env, capacity=10, init=10)
        stored = []

        def producer():
            yield container.put(5)
            stored.append(env.now)

        def consumer():
            yield env.timeout(3)
            yield container.get(7)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert stored == [3]


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)
        received = []

        def producer():
            for item in ("x", "y", "z"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == ["x", "y", "z"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        times = []

        def consumer():
            yield store.get()
            times.append(env.now)

        def producer():
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [7]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put(1)
            yield store.put(2)
            done.append(env.now)

        def consumer():
            yield env.timeout(4)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [4]

    def test_len(self, env):
        store = Store(env)

        def producer():
            yield store.put("a")
            yield store.put("b")

        env.process(producer())
        env.run()
        assert len(store) == 2

    def test_cancel_get(self, env):
        store = Store(env)
        get = store.get()
        env.run()
        store.cancel_get(get)

        def producer():
            yield store.put("item")

        env.process(producer())
        env.run()
        # The cancelled get never consumed the item.
        assert store.items == ["item"]


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        received = []

        def producer():
            for item in (5, 1, 3):
                yield store.put(item)

        def consumer():
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [1, 3, 5]
