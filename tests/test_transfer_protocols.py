"""Unit tests for the out-of-band transfer framework and protocols."""

import pytest

from repro.net.flows import Network
from repro.net.host import Host
from repro.storage.filesystem import FileContent, LocalFileSystem
from repro.transfer.bittorrent import BitTorrentProtocol
from repro.transfer.ftp import FTPProtocol
from repro.transfer.http import HTTPProtocol
from repro.transfer.oob import (
    DaemonConnector,
    TransferEndpoint,
    TransferError,
    TransferState,
)
from repro.transfer.registry import ProtocolRegistry, UnknownProtocolError, default_registry


@pytest.fixture
def platform(env):
    """A server with a file, plus four workers, on a 100 MB/s LAN."""
    network = Network(env, default_latency_s=0.001)
    server = network.add_host(Host("server", uplink_mbps=100, downlink_mbps=100,
                                   stable=True))
    server_fs = LocalFileSystem(owner="server")
    content = FileContent.from_seed("file.bin", 50)
    server_fs.write("file.bin", content)
    workers = []
    for i in range(4):
        host = network.add_host(Host(f"w{i}", uplink_mbps=100, downlink_mbps=100))
        workers.append((host, LocalFileSystem(owner=host.name)))
    source = TransferEndpoint(server, server_fs, "file.bin")
    return network, server, source, content, workers


def make_handle(protocol, content, source, worker):
    host, fs = worker
    return protocol.create_handle(
        content, source, TransferEndpoint(host, fs, "downloads/file.bin"))


class TestHandleAndEndpoints:
    def test_progress_and_probe(self, env, platform):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network)
        handle = make_handle(protocol, content, source, workers[0])
        assert handle.progress == 0.0
        assert handle.probe() is TransferState.PENDING
        protocol.non_blocking_receive(handle)
        env.run(until=handle.done)
        assert handle.state is TransferState.COMPLETE
        assert handle.progress == 1.0
        assert handle.throughput_mbps > 0
        assert workers[0][1].read("downloads/file.bin").verify(content)

    def test_cancel(self, env, platform):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network)
        handle = make_handle(protocol, content, source, workers[0])
        protocol.non_blocking_receive(handle)
        env.run(until=0.1)
        handle.cancel("test cancel")
        env.run(until=5)
        assert handle.state is TransferState.CANCELLED

    def test_probe_detects_corruption(self, env, platform):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network)
        handle = make_handle(protocol, content, source, workers[0])
        protocol.non_blocking_receive(handle)
        env.run(until=handle.done)
        # Corrupt the received copy behind the handle's back.
        workers[0][1].write("downloads/file.bin", content.corrupted())
        assert handle.probe() is TransferState.FAILED


class TestFTP:
    def test_blocking_receive(self, env, platform, drive):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network)
        handle = make_handle(protocol, content, source, workers[0])
        result = drive(env, protocol.blocking_receive(handle))
        assert result.state is TransferState.COMPLETE
        # 50 MB at 100 MB/s + control overhead.
        assert 0.5 < env.now < 1.0

    def test_missing_source_fails(self, env, platform):
        network, server, _, content, workers = platform
        protocol = FTPProtocol(env, network)
        bogus_source = TransferEndpoint(server, LocalFileSystem(), "missing.bin")
        handle = protocol.create_handle(content, bogus_source,
                                        TransferEndpoint(*workers[0], "x"))
        protocol.non_blocking_receive(handle)
        env.run(until=5)
        assert handle.state is TransferState.FAILED
        assert "missing" in handle.error

    def test_server_connection_limit_serialises(self, env, platform):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network, max_server_connections=1)
        handles = [make_handle(protocol, content, source, w) for w in workers[:2]]
        for handle in handles:
            protocol.non_blocking_receive(handle)
        env.run(until=env.all_of([h.done for h in handles]))
        ends = sorted(h.end_time for h in handles)
        # With one server slot the downloads cannot overlap.
        assert ends[1] - ends[0] > 0.4

    def test_concurrent_downloads_share_server_uplink(self, env, platform):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network)
        handles = [make_handle(protocol, content, source, w) for w in workers]
        for handle in handles:
            protocol.non_blocking_receive(handle)
        env.run(until=env.all_of([h.done for h in handles]))
        # 4 x 50 MB through a 100 MB/s uplink: at least 2 s.
        assert max(h.end_time for h in handles) >= 2.0

    def test_offline_destination_fails(self, env, platform):
        network, server, source, content, workers = platform
        protocol = FTPProtocol(env, network)
        handle = make_handle(protocol, content, source, workers[0])
        workers[0][0].fail()
        protocol.non_blocking_receive(handle)
        env.run(until=5)
        assert handle.state is TransferState.FAILED


class TestHTTP:
    def test_lower_setup_cost_than_ftp(self, env, platform, drive):
        network, server, source, content, workers = platform
        small = FileContent.from_seed("tiny.bin", 0.01)
        source.filesystem.write("tiny.bin", small)
        tiny_source = TransferEndpoint(source.host, source.filesystem, "tiny.bin")

        http = HTTPProtocol(env, network)
        handle = http.create_handle(small, tiny_source,
                                    TransferEndpoint(*workers[0], "t1"))
        drive(env, http.blocking_receive(handle))
        http_time = env.now

        from repro.sim.kernel import Environment
        env2 = Environment()
        network2 = Network(env2, default_latency_s=0.001)
        server2 = network2.add_host(Host("server", uplink_mbps=100, downlink_mbps=100))
        worker2 = network2.add_host(Host("w", uplink_mbps=100, downlink_mbps=100))
        fs2 = LocalFileSystem()
        fs2.write("tiny.bin", small)
        ftp = FTPProtocol(env2, network2)
        handle2 = ftp.create_handle(small, TransferEndpoint(server2, fs2, "tiny.bin"),
                                    TransferEndpoint(worker2, LocalFileSystem(), "t1"))
        proc = env2.process(ftp.blocking_receive(handle2))
        env2.run(until=proc)
        assert http_time < env2.now

    def test_keep_alive_avoids_second_handshake(self, env, platform, drive):
        network, server, source, content, workers = platform
        http = HTTPProtocol(env, network, keep_alive=True)
        handle1 = make_handle(http, content, source, workers[0])
        drive(env, http.blocking_receive(handle1))
        first = env.now
        handle2 = http.create_handle(
            content, source, TransferEndpoint(*workers[0], "downloads/again.bin"))
        drive(env, http.blocking_receive(handle2))
        assert (env.now - first) < first  # second fetch strictly cheaper


class TestBitTorrent:
    def test_piece_level_swarm_completes(self, env, platform):
        network, server, source, content, workers = platform
        bt = BitTorrentProtocol(env, network, mode="piece", piece_size_mb=10)
        handles = [make_handle(bt, content, source, w) for w in workers]
        for handle in handles:
            bt.non_blocking_receive(handle)
        env.run(until=env.all_of([h.done for h in handles]))
        for (host, fs), handle in zip(workers, handles):
            assert handle.state is TransferState.COMPLETE
            assert fs.read("downloads/file.bin").verify(content)
        stats = bt.swarm_stats(content.checksum)
        assert stats.peers_completed == len(workers)
        assert stats.pieces_transferred >= stats.piece_count  # peers exchange pieces

    def test_fluid_swarm_completes(self, env, platform):
        network, server, source, content, workers = platform
        bt = BitTorrentProtocol(env, network, mode="fluid")
        handles = [make_handle(bt, content, source, w) for w in workers]
        for handle in handles:
            bt.non_blocking_receive(handle)
        env.run(until=env.all_of([h.done for h in handles]))
        assert all(h.state is TransferState.COMPLETE for h in handles)

    def test_piece_count_bounds(self, env, platform):
        network, *_ = platform
        bt = BitTorrentProtocol(env, network, piece_size_mb=4, max_pieces=64,
                                min_pieces=4)
        assert bt.piece_count_for(1) == 4
        assert bt.piece_count_for(100) == 25
        assert bt.piece_count_for(10_000) == 64
        assert bt.piece_count_for(0) == 1

    def test_auto_mode_picks_fluid_for_large_swarms(self, env, platform):
        network, *_ = platform
        bt = BitTorrentProtocol(env, network, mode="auto", detail_budget=10)
        assert bt.mode == "auto"

    def test_invalid_parameters(self, env, platform):
        network, *_ = platform
        with pytest.raises(ValueError):
            BitTorrentProtocol(env, network, mode="bogus")
        with pytest.raises(ValueError):
            BitTorrentProtocol(env, network, efficiency=0.0)

    def test_daemon_started_once_per_host(self, env, platform, drive):
        network, server, source, content, workers = platform
        daemon = DaemonConnector(env, startup_cost_s=1.0)
        bt = BitTorrentProtocol(env, network, mode="piece", daemon=daemon)
        handle = make_handle(bt, content, source, workers[0])
        drive(env, bt.blocking_receive(handle))
        assert daemon.is_started(workers[0][0])
        assert not daemon.is_started(workers[1][0])
        daemon.stop(workers[0][0])
        assert not daemon.is_started(workers[0][0])

    def test_bt_slower_than_ftp_for_tiny_files(self, env, platform, drive):
        network, server, source, content, workers = platform
        tiny = FileContent.from_seed("tiny.bin", 1)
        source.filesystem.write("tiny.bin", tiny)
        tiny_source = TransferEndpoint(source.host, source.filesystem, "tiny.bin")

        ftp = FTPProtocol(env, network)
        bt = BitTorrentProtocol(env, network, mode="piece")
        start = env.now
        drive(env, ftp.blocking_receive(ftp.create_handle(
            tiny, tiny_source, TransferEndpoint(*workers[0], "ftp.bin"))))
        ftp_time = env.now - start
        start = env.now
        drive(env, bt.blocking_receive(bt.create_handle(
            tiny, tiny_source, TransferEndpoint(*workers[1], "bt.bin"))))
        bt_time = env.now - start
        assert bt_time > ftp_time


class TestRegistry:
    def test_default_registry_protocols(self, env, platform):
        network, *_ = platform
        registry = default_registry(env, network)
        assert set(registry.names()) == {"bittorrent", "ftp", "http"}
        assert registry.supports("FTP")
        assert isinstance(registry.get("ftp"), FTPProtocol)
        # Instances are cached.
        assert registry.get("ftp") is registry.get("ftp")

    def test_unknown_protocol(self, env, platform):
        network, *_ = platform
        registry = default_registry(env, network)
        with pytest.raises(UnknownProtocolError):
            registry.get("gridftp")

    def test_register_custom_protocol(self, env, platform):
        network, *_ = platform
        registry = ProtocolRegistry(env, network)
        registry.register("ftp", lambda e, n: FTPProtocol(e, n))
        with pytest.raises(ValueError):
            registry.register("ftp", lambda e, n: FTPProtocol(e, n))
        registry.register("ftp", lambda e, n: FTPProtocol(e, n, control_setup_s=0.2),
                          replace=True)
        assert registry.get("ftp").control_setup_s == pytest.approx(0.2)

    def test_register_instance(self, env, platform):
        network, *_ = platform
        registry = ProtocolRegistry(env, network)
        instance = HTTPProtocol(env, network)
        registry.register_instance("http", instance)
        assert registry.get("http") is instance
