"""RpcChannel failure semantics: mid-call crashes, marshalling accounting,
shard-labelled errors and the failover-retry policy (fabric PR satellites)."""

import pytest

from repro.net.host import Host
from repro.net.rpc import (
    ChannelKind,
    FailoverPolicy,
    RpcChannel,
    RpcEndpoint,
    RpcError,
    RpcResponseLostError,
)
from repro.sim.kernel import Environment


class _Service:
    """A service whose (generator) method can crash its host mid-call."""

    def __init__(self, env, host=None, crash_mid_call=False, delay_s=0.01):
        self.env = env
        self.host = host
        self.crash_mid_call = crash_mid_call
        self.delay_s = delay_s
        self.calls = 0

    def ping(self, value):
        self.calls += 1
        return ("pong", value)

    def slow_ping(self, value):
        self.calls += 1
        yield self.env.timeout(self.delay_s)
        if self.crash_mid_call and self.host is not None:
            self.host.fail()
        return ("pong", value)


def _run(env, gen):
    """Drive a channel invocation to completion; return its value."""
    result = {}

    def wrapper():
        result["value"] = yield from gen
    env.process(wrapper())
    env.run(until=env.timeout(60.0))
    return result.get("value")


class TestInvokeFailureSemantics:
    def test_offline_before_call_raises_with_shard_label(self):
        env = Environment()
        host = Host("svc-1", stable=True)
        endpoint = RpcEndpoint(_Service(env), host=host,
                               name="DataCatalog", shard="dc-3")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        host.fail()

        def caller():
            with pytest.raises(RpcError) as err:
                yield from channel.invoke(endpoint, "ping", 1)
            assert "DataCatalog[dc-3].ping" in str(err.value)
            assert "svc-1" in str(err.value)
        env.process(caller())
        env.run(until=env.timeout(1.0))

    def test_host_crash_mid_call_fails_the_response(self):
        """The post-call online check: the request reached the service (the
        method ran) but the host died before the response made it back."""
        env = Environment()
        host = Host("svc-1", stable=True)
        service = _Service(env, host=host, crash_mid_call=True)
        endpoint = RpcEndpoint(service, host=host, name="DataScheduler",
                               shard="ds-0")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)

        def caller():
            with pytest.raises(RpcError) as err:
                yield from channel.invoke(endpoint, "slow_ping", 2)
            assert "failed during the call" in str(err.value)
            assert "DataScheduler[ds-0].slow_ping" in str(err.value)
        env.process(caller())
        env.run(until=env.timeout(1.0))
        assert service.calls == 1          # the method itself did run

    def test_crash_between_marshalling_and_dispatch_is_retryable(self):
        """The host dies while the request is in transit — after the
        marshalling latency started being charged but before the method is
        dispatched.  The method never ran, so this must be a *plain*
        retryable RpcError (not a lost response) and failover must succeed
        against a replica without duplicating any effect."""
        env = Environment()
        host = Host("svc-1", stable=True)
        service = _Service(env)
        endpoint = RpcEndpoint(service, host=host, name="DataCatalog",
                               shard="dc-2")
        replica_host = Host("svc-2", stable=True)
        replica = RpcEndpoint(service, host=replica_host, name="DataCatalog",
                              shard="dc-2")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        # Fail the host mid-flight: after the request latency yield began
        # (cost/2 ≈ 124 µs for 1 KB over RMI remote) but before dispatch.
        half_request = channel.call_cost(1.0) / 2.0

        def assassin():
            yield env.timeout(half_request / 2.0)
            host.fail()
        env.process(assassin())

        def caller():
            with pytest.raises(RpcError) as err:
                yield from channel.invoke(endpoint, "ping", 9)
            assert not isinstance(err.value, RpcResponseLostError)
            assert "went offline before dispatch" in str(err.value)
            assert "DataCatalog[dc-2].ping" in str(err.value)
        env.process(caller())
        env.run(until=env.timeout(1.0))
        assert service.calls == 0           # the method never ran

        # And through the failover path: the attempt is retried (it is not
        # at-most-once-fatal) and the replica serves the call exactly once.
        resolutions = []

        def resolve():
            resolutions.append(env.now)
            return endpoint if len(resolutions) == 1 else replica

        value = _run(env, channel.invoke_failover(
            resolve, "ping", 9,
            policy=FailoverPolicy(max_attempts=4, backoff_s=0.1)))
        assert value == ("pong", 9)
        assert service.calls == 1
        assert channel.failover_attempts == 1
        assert channel.lost_requests == 0

    def test_label_without_shard_is_unchanged(self):
        endpoint = RpcEndpoint(object(), name="DataCatalog")
        assert endpoint.label() == "DataCatalog"
        bare = RpcEndpoint(_Service(Environment()))
        assert bare.label() == "_Service"

    def test_payload_kb_marshalling_accounting(self):
        env = Environment()
        endpoint = RpcEndpoint(_Service(env), name="DataCatalog", shard="dc-1")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)

        value = _run(env, channel.invoke(endpoint, "ping", 7, payload_kb=10.0))
        assert value == ("pong", 7)
        expected = channel.round_trip_s + 10.0 * channel.per_kb_s
        assert channel.calls == 1
        assert channel.total_latency_s == pytest.approx(expected)
        assert channel.marshalled_kb == pytest.approx(10.0)
        assert channel.marshalling_latency_s == pytest.approx(
            10.0 * channel.per_kb_s)
        # Per-endpoint-label accounting carries the shard id.
        assert channel.calls_by_label == {"DataCatalog[dc-1]": 1}
        assert channel.latency_by_label["DataCatalog[dc-1]"] == pytest.approx(
            expected)

    def test_simulated_time_charged_matches_call_cost(self):
        env = Environment()
        endpoint = RpcEndpoint(_Service(env), name="DataCatalog")
        channel = RpcChannel(env, ChannelKind.RMI_LOCAL)

        done = {}

        def caller():
            yield from channel.invoke(endpoint, "ping", 1, payload_kb=4.0)
            done["at"] = env.now
        env.process(caller())
        env.run(until=env.timeout(1.0))
        assert done["at"] == pytest.approx(channel.call_cost(4.0))


class TestFailoverPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FailoverPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            FailoverPolicy(backoff_s=-1.0)

    def test_retries_until_resolver_hands_out_live_endpoint(self):
        """Dead-primary attempts are retried; a later resolution succeeds."""
        env = Environment()
        dead_host = Host("svc-dead", stable=True)
        dead_host.fail()
        live_host = Host("svc-live", stable=True)
        service = _Service(env)
        dead = RpcEndpoint(service, host=dead_host, name="S", shard="s-0")
        live = RpcEndpoint(service, host=live_host, name="S", shard="s-0")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        resolutions = []

        def resolve():
            # The first two resolutions still point at the dead primary
            # (the detector has not declared it yet), then failover.
            resolutions.append(env.now)
            return dead if len(resolutions) <= 2 else live

        policy = FailoverPolicy(max_attempts=5, backoff_s=0.5)
        value = _run(env, channel.invoke_failover(
            resolve, "ping", 42, policy=policy))
        assert value == ("pong", 42)
        assert len(resolutions) == 3
        assert channel.failover_attempts == 2
        assert channel.lost_requests == 0
        # Each failed attempt waited the policy backoff before re-resolving.
        assert resolutions[1] == pytest.approx(0.5)
        assert resolutions[2] == pytest.approx(1.0)

    def test_exhausted_attempts_lose_the_request(self):
        env = Environment()
        dead_host = Host("svc-dead", stable=True)
        dead_host.fail()
        endpoint = RpcEndpoint(_Service(env), host=dead_host,
                               name="S", shard="s-1")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        policy = FailoverPolicy(max_attempts=3, backoff_s=0.1)

        def caller():
            with pytest.raises(RpcError):
                yield from channel.invoke_failover(
                    lambda: endpoint, "ping", 1, policy=policy)
        env.process(caller())
        env.run(until=env.timeout(5.0))
        assert channel.lost_requests == 1
        assert channel.failover_attempts == 2   # attempts 1..2 retried, 3rd lost

    def test_response_lost_is_never_retried(self):
        """At-most-once: a host crash *after* the method executed must not
        re-execute the call on a replica — the service already mutated."""
        env = Environment()
        host = Host("svc-1", stable=True)
        service = _Service(env, host=host, crash_mid_call=True)
        crashed = RpcEndpoint(service, host=host, name="S", shard="s-0")
        replica_host = Host("svc-2", stable=True)
        replica = RpcEndpoint(service, host=replica_host, name="S", shard="s-0")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        resolutions = []

        def resolve():
            resolutions.append(env.now)
            return crashed if len(resolutions) == 1 else replica

        def caller():
            with pytest.raises(RpcResponseLostError):
                yield from channel.invoke_failover(
                    resolve, "slow_ping", 1,
                    policy=FailoverPolicy(max_attempts=8, backoff_s=0.1))
        env.process(caller())
        env.run(until=env.timeout(5.0))
        assert service.calls == 1           # executed exactly once
        assert len(resolutions) == 1        # no failover re-resolution
        assert channel.lost_requests == 1
        assert channel.failover_attempts == 0

    def test_resolver_rpc_errors_also_retry(self):
        """A resolver raising RpcError (no live replica) counts as an attempt."""
        env = Environment()
        live_host = Host("svc-live", stable=True)
        service = _Service(env)
        live = RpcEndpoint(service, host=live_host, name="S", shard="s-2")
        channel = RpcChannel(env, ChannelKind.RMI_REMOTE)
        state = {"n": 0}

        def resolve():
            state["n"] += 1
            if state["n"] == 1:
                raise RpcError("no live replica for service 's' shard s-2")
            return live

        value = _run(env, channel.invoke_failover(
            resolve, "ping", 3, policy=FailoverPolicy(max_attempts=2,
                                                      backoff_s=0.2)))
        assert value == ("pong", 3)
        assert channel.failover_attempts == 1
