"""Unit tests for the named random-stream registry."""

import pytest

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "net") == derive_seed(42, "net")

    def test_different_names_differ(self):
        assert derive_seed(42, "net") != derive_seed(42, "cpu")

    def test_different_masters_differ(self):
        assert derive_seed(1, "net") != derive_seed(2, "net")

    def test_positive_63_bit(self):
        seed = derive_seed(123456789, "stream")
        assert 0 <= seed < (1 << 63)


class TestRandomStreams:
    def test_same_name_same_generator(self):
        streams = RandomStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).uniform("x", 0, 1)
        b = RandomStreams(7).uniform("x", 0, 1)
        assert a == b

    def test_streams_are_independent_of_creation_order(self):
        one = RandomStreams(7)
        _ = one.uniform("first", 0, 1)
        value_one = one.uniform("second", 0, 1)
        two = RandomStreams(7)
        value_two = two.uniform("second", 0, 1)
        assert value_one == value_two

    def test_exponential_positive_and_validates(self):
        streams = RandomStreams(3)
        assert streams.exponential("e", 10.0) > 0
        with pytest.raises(ValueError):
            streams.exponential("e", 0)

    def test_normal_clipped_bounds(self):
        streams = RandomStreams(3)
        for i in range(200):
            value = streams.normal_clipped(f"n{i}", 1.0, 5.0, minimum=0.5, maximum=1.5)
            assert 0.5 <= value <= 1.5

    def test_weibull_validates(self):
        streams = RandomStreams(3)
        assert streams.weibull("w", 0.7, 100.0) >= 0
        with pytest.raises(ValueError):
            streams.weibull("w", -1, 100.0)

    def test_choice_range_and_validation(self):
        streams = RandomStreams(3)
        for i in range(100):
            assert 0 <= streams.choice(f"c{i}", 5) < 5
        with pytest.raises(ValueError):
            streams.choice("c", 0)

    def test_shuffle_preserves_items(self):
        streams = RandomStreams(3)
        items = list(range(20))
        shuffled = streams.shuffle("s", items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_spawn_derives_child_registry(self):
        parent = RandomStreams(7)
        child_a = parent.spawn("child")
        child_b = RandomStreams(7).spawn("child")
        assert child_a.uniform("x", 0, 1) == child_b.uniform("x", 0, 1)
        assert child_a.master_seed != parent.master_seed
