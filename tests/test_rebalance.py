"""The elastic ring and the migration overlay: unit + property coverage.

The handoff-plan properties are the load-bearing guarantees of the live
rebalance: an S → S±1 ring transition moves *exactly* the keys whose owner
changes (no gratuitous reshuffling), the volume moved stays within ε of
the consistent-hashing minimum ``K·1/max(S,S')``, and the whole plan is a
pure function of (shard count, vnodes, seed) — two coordinators planning
the same transition agree key for key.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.services.rebalance import MigrationStats, ShardMigration
from repro.services.router import HandoffPlan, KeyMove, ShardRing
from repro.sim.kernel import Environment

common_settings = settings(max_examples=15, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])

keys_strategy = st.lists(
    st.from_regex(r"[a-z0-9\-]{4,24}", fullmatch=True),
    min_size=1, max_size=120, unique=True)


# ---------------------------------------------------------------------------
# Handoff-plan properties
# ---------------------------------------------------------------------------

@common_settings
@given(keys=keys_strategy,
       shards=st.integers(min_value=1, max_value=5),
       grow=st.booleans(),
       seed=st.integers(min_value=0, max_value=3))
def test_handoff_moves_exactly_the_owner_changed_keys(keys, shards, grow,
                                                      seed):
    """plan_handoff's move set equals the brute-force owner diff."""
    new_shards = shards + 1 if grow else max(1, shards - 1)
    old = ShardRing(shards, label="dc", vnodes=32, seed=seed)
    new = old.with_shards(new_shards)
    plan = old.plan_handoff(new, keys)
    expected = {key: (old.shard_for(key), new.shard_for(key))
                for key in keys
                if old.shard_for(key) != new.shard_for(key)}
    got = {move.key: (move.src, move.dst) for move in plan.moves}
    assert got == expected
    assert plan.total_keys == len(keys)
    # Every move crosses shards and lands inside the new shard range.
    for move in plan.moves:
        assert move.src != move.dst
        assert 0 <= move.dst < new_shards


@common_settings
@given(keys=keys_strategy,
       shards=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=2))
def test_handoff_is_deterministic_given_the_ring_seed(keys, shards, seed):
    """Two independently built rings plan the identical handoff."""
    plan_a = ShardRing(shards, label="ds", vnodes=32, seed=seed).plan_handoff(
        ShardRing(shards + 1, label="ds", vnodes=32, seed=seed), keys)
    plan_b = ShardRing(shards, label="ds", vnodes=32, seed=seed).plan_handoff(
        ShardRing(shards + 1, label="ds", vnodes=32, seed=seed), keys)
    assert plan_a.moves == plan_b.moves
    assert plan_a.keys_moved == plan_b.keys_moved


@pytest.mark.parametrize("shards,new_shards",
                         [(s, s + 1) for s in range(1, 7)]
                         + [(s, s - 1) for s in range(2, 8)])
def test_handoff_volume_stays_near_the_consistent_hash_minimum(shards,
                                                               new_shards):
    """With enough vnodes the moved volume is within ε of K·1/max(S,S').

    The reference is the *balanced-ring* minimum: a ring may legitimately
    move slightly fewer keys (trading balance for stability), but never
    much more — ε here is 25% at 64 vnodes, the bound the
    ``fabric-rebalance`` BENCH gate holds the live migration to.
    """
    keys = [f"key-{i:05d}" for i in range(4000)]
    old = ShardRing(shards, label="dc", vnodes=64)
    plan = old.plan_handoff(old.with_shards(new_shards), keys)
    assert plan.keys_moved <= plan.theoretical_minimum * 1.25


def test_split_then_merge_moves_the_same_keys_back():
    """A split's moves and the following merge's moves are inverses."""
    keys = [f"uid-{i:05d}" for i in range(2000)]
    ring2 = ShardRing(2, label="dc", vnodes=64)
    ring3 = ring2.with_shards(3)
    split = ring2.plan_handoff(ring3, keys)
    merge = ring3.plan_handoff(ring2, keys)
    assert ({m.key for m in split.moves} == {m.key for m in merge.moves})
    back = {m.key: m.dst for m in merge.moves}
    for move in split.moves:
        assert back[move.key] == move.src


def test_plan_handoff_rejects_foreign_ring_families():
    ring = ShardRing(2, label="dc", vnodes=16)
    with pytest.raises(ValueError):
        ring.plan_handoff(ShardRing(3, label="ds", vnodes=16), ["k"])
    with pytest.raises(ValueError):
        ring.plan_handoff(ShardRing(3, label="dc", vnodes=32), ["k"])
    with pytest.raises(ValueError):
        ring.plan_handoff(ShardRing(3, label="dc", vnodes=16, seed=1), ["k"])


def test_arc_shares_cover_the_ring():
    ring = ShardRing(3, label="dc", vnodes=64)
    shares = [ring.arc_share(s) for s in range(3)]
    assert sum(shares) == pytest.approx(1.0)
    assert all(share > 0 for share in shares)


# ---------------------------------------------------------------------------
# The migration overlay's state machine
# ---------------------------------------------------------------------------

def _overlay(keys=("a", "b"), shards=2):
    env = Environment()
    old = {s: ShardRing(shards, label=s, vnodes=16) for s in ("dc", "ds")}
    new = {s: old[s].with_shards(shards + 1) for s in ("dc", "ds")}
    plans = {s: old[s].plan_handoff(new[s], list(keys)) for s in ("dc", "ds")}
    return env, ShardMigration(env, "split", old, new, plans)


def test_effective_shard_follows_src_until_flip():
    env, migration = _overlay(keys=[f"k{i}" for i in range(200)])
    moves = migration.planned["dc"]
    assert moves, "expected at least one planned move"
    key, move = sorted(moves.items())[0]
    assert migration.effective_shard("dc", key) == move.src
    migration.flip_all()
    assert migration.effective_shard("dc", key) == move.dst


def test_unplanned_keys_route_by_the_new_ring():
    env, migration = _overlay(keys=["only-key"])
    fresh = "some-key-born-mid-migration"
    assert (migration.effective_shard("dc", fresh)
            == migration.new_rings["dc"].shard_for(fresh))


def test_seal_blocks_planned_unflipped_keys_only():
    env, migration = _overlay(keys=[f"k{i}" for i in range(100)])
    key = sorted(migration.planned["dc"])[0]
    assert not migration.is_blocked("dc", key)
    migration.seal()
    assert migration.is_blocked("dc", key)
    assert not migration.is_blocked("dc", "unplanned-key")
    migration.flip_all()
    assert not migration.is_blocked("dc", key)
    migration.unseal()


def test_inflight_tracking_dirties_unflipped_keys_on_exit():
    env, migration = _overlay(keys=[f"k{i}" for i in range(100)])
    key = sorted(migration.planned["ds"])[0]
    token = migration.note_enter("ds", (key, "unplanned"))
    assert migration._inflight == 1           # unplanned key not tracked
    migration.note_exit(token)
    assert migration._inflight == 0
    assert (("ds", key) in migration.take_dirty())
    assert not migration.has_dirty()


def test_mutations_on_non_source_shards_do_not_redirty():
    env, migration = _overlay(keys=[f"k{i}" for i in range(100)])
    key, move = sorted(migration.planned["ds"].items())[0]
    migration.note_dirty_from("ds", move.dst, key)    # dst-side import echo
    assert not migration.has_dirty()
    migration.note_dirty_from("ds", move.src, key)    # genuine source write
    assert migration.has_dirty()


def test_stats_move_ratio():
    stats = MigrationStats(kind="split", old_shards=2, new_shards=3,
                           started_at=0.0)
    stats.keys_planned = {"dc": 30, "ds": 30}
    stats.theoretical_minimum = {"dc": 25.0, "ds": 25.0}
    assert stats.keys_moved == 60
    assert stats.move_ratio == pytest.approx(1.2)
