"""Unit tests for Data, Locator, attributes and the attribute grammar."""

import pytest

from repro.core.attributes import (
    Attribute,
    AttributeError_,
    DEFAULT_ATTRIBUTE,
    REPLICATE_TO_ALL,
    parse_attribute,
)
from repro.core.data import Data, DataFlag, DataStatus, Locator
from repro.storage.filesystem import FileContent


class TestData:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Data(name="")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Data(name="x", size_mb=-1)

    def test_from_content_computes_metadata(self):
        content = FileContent.from_seed("input.dat", 12.5)
        data = Data.from_content(content)
        assert data.name == "input.dat"
        assert data.size_mb == pytest.approx(12.5)
        assert data.checksum == content.checksum
        assert data.matches_content(content)
        assert data.has_content

    def test_from_content_with_flags_and_name(self):
        content = FileContent.from_seed("app.bin", 4.45)
        data = Data.from_content(content, flags=DataFlag.EXECUTABLE | DataFlag.COMPRESSED,
                                 name="application")
        assert data.name == "application"
        assert data.is_executable
        assert data.is_compressed

    def test_unique_uids(self):
        uids = {Data(name=f"d{i}").uid for i in range(50)}
        assert len(uids) == 50

    def test_paper_style_accessors(self):
        data = Data(name="collector")
        assert data.getname() == "collector"
        assert data.getuid() == data.uid

    def test_default_status_and_with_status(self):
        data = Data(name="x")
        assert data.status is DataStatus.CREATED
        updated = data.with_status(DataStatus.AVAILABLE)
        assert updated.status is DataStatus.AVAILABLE
        assert data.status is DataStatus.CREATED

    def test_hashable_by_uid(self):
        data = Data(name="x")
        assert len({data, data}) == 1


class TestLocator:
    def test_describe(self):
        locator = Locator(data_uid="u1", host_name="server", reference="path/x",
                          protocol="ftp")
        assert locator.describe() == "ftp://server/path/x"

    def test_defaults(self):
        locator = Locator(data_uid="u1", host_name="h", reference="r")
        assert locator.protocol == "http"
        assert not locator.permanent
        assert locator.uid


class TestAttributeObject:
    def test_defaults(self):
        attr = Attribute()
        assert attr.replica == 1
        assert not attr.fault_tolerance
        assert attr.protocol == "http"
        assert not attr.has_affinity
        assert not attr.has_relative_lifetime
        assert not attr.replicate_to_all

    def test_replicate_to_all(self):
        attr = Attribute(replica=REPLICATE_TO_ALL)
        assert attr.replicate_to_all

    def test_invalid_replica(self):
        with pytest.raises(AttributeError_):
            Attribute(replica=0)
        with pytest.raises(AttributeError_):
            Attribute(replica=-2)

    def test_invalid_lifetime_and_protocol(self):
        with pytest.raises(AttributeError_):
            Attribute(absolute_lifetime=-5)
        with pytest.raises(AttributeError_):
            Attribute(protocol="")

    def test_describe_round_trips_through_parser(self):
        attr = Attribute(name="genebase", replica=3, fault_tolerance=True,
                         absolute_lifetime=3600, affinity="Sequence",
                         protocol="bittorrent")
        parsed = parse_attribute(attr.describe())
        assert parsed.name == attr.name
        assert parsed.replica == attr.replica
        assert parsed.fault_tolerance == attr.fault_tolerance
        assert parsed.absolute_lifetime == attr.absolute_lifetime
        assert parsed.affinity == attr.affinity
        assert parsed.protocol == attr.protocol

    def test_with_name_gets_fresh_uid(self):
        attr = Attribute(name="a")
        renamed = attr.with_name("b")
        assert renamed.name == "b"
        assert renamed.uid != attr.uid

    def test_default_attribute_singleton_values(self):
        assert DEFAULT_ATTRIBUTE.replica == 1
        assert DEFAULT_ATTRIBUTE.protocol == "http"


class TestAttributeGrammar:
    def test_listing1_updater_attribute(self):
        attr = parse_attribute(
            "attr update = { replicat =-1, oob= bittorrent, abstime=43200}")
        assert attr.name == "update"
        assert attr.replica == -1
        assert attr.protocol == "bittorrent"
        assert attr.absolute_lifetime == pytest.approx(43200)

    def test_listing3_genebase_attribute(self):
        attr = parse_attribute(
            'attribute Genebase = { protocol = "BitTorrent", lifetime = Collector, '
            'affinity = Sequence }')
        assert attr.name == "Genebase"
        assert attr.protocol == "bittorrent"
        assert attr.relative_lifetime == "Collector"
        assert attr.affinity == "Sequence"

    def test_listing3_sequence_attribute(self):
        attr = parse_attribute(
            'attr Sequence = { faulttolerance = true, protocol = "http", '
            'lifetime = Collector, replication = 2 }')
        assert attr.fault_tolerance is True
        assert attr.replica == 2
        assert attr.protocol == "http"

    def test_affinity_host_attribute(self):
        attr = parse_attribute("attr host = { affinity = abc-123 }")
        assert attr.affinity == "abc-123"

    def test_key_aliases(self):
        for alias in ("replica", "replicat", "replication"):
            assert parse_attribute(f"attr a = {{{alias} = 4}}").replica == 4
        for alias in ("oob", "protocol"):
            assert parse_attribute(f"attr a = {{{alias} = ftp}}").protocol == "ftp"
        for alias in ("ft", "fault_tolerance", "faulttolerance"):
            assert parse_attribute(f"attr a = {{{alias} = true}}").fault_tolerance

    def test_boolean_spellings(self):
        assert parse_attribute("attr a = {ft = yes}").fault_tolerance
        assert not parse_attribute("attr a = {ft = off}").fault_tolerance
        with pytest.raises(AttributeError_):
            parse_attribute("attr a = {ft = maybe}")

    def test_trailing_comma_and_whitespace_tolerated(self):
        attr = parse_attribute("  attr  x = {  replica = 2 , }  ")
        assert attr.replica == 2

    def test_malformed_definitions_rejected(self):
        for bad in (
            "",
            "update = {replica = 1}",
            "attr update replica = 1",
            "attr update = {replica}",
            "attr update = {= 1}",
            "attr update = {unknownkey = 1}",
            "attr update = {replica = abc}",
            "attr update = {abstime = soon}",
        ):
            with pytest.raises(AttributeError_):
                parse_attribute(bad)

    def test_quoted_values_stripped(self):
        attr = parse_attribute("attr a = {oob = 'FTP'}")
        assert attr.protocol == "ftp"
