"""Unit tests for runtime helpers: stats, sync views, reports, agent wiring."""

import pytest

from repro.apps.master_worker import MasterWorkerReport, TaskRecord
from repro.core.attributes import Attribute, DEFAULT_ATTRIBUTE
from repro.core.data import Data
from repro.core.runtime import BitDewEnvironment, DataTransferStats
from repro.net.topology import cluster_topology
from repro.storage.filesystem import FileContent


class TestDataTransferStats:
    def test_empty_timeline(self):
        stats = DataTransferStats(data_uid="u", data_name="d")
        assert stats.wait_time_s is None
        assert stats.download_time_s is None
        assert stats.bandwidth_mbps is None

    def test_complete_timeline(self):
        stats = DataTransferStats(data_uid="u", data_name="d", size_mb=100,
                                  assigned_at=10.0, download_started_at=13.0,
                                  download_completed_at=23.0)
        assert stats.wait_time_s == pytest.approx(3.0)
        assert stats.download_time_s == pytest.approx(10.0)
        assert stats.bandwidth_mbps == pytest.approx(10.0)

    def test_zero_duration_bandwidth_is_none(self):
        stats = DataTransferStats(data_uid="u", data_name="d", size_mb=1,
                                  download_started_at=5.0,
                                  download_completed_at=5.0)
        assert stats.bandwidth_mbps is None


class TestHostAgentHelpers:
    @pytest.fixture
    def runtime(self, env):
        topo = cluster_topology(env, n_workers=2)
        return topo, BitDewEnvironment(topo)

    def test_cache_paths_are_per_datum(self, runtime):
        topo, rt = runtime
        agent = rt.attach(topo.worker_hosts[0], auto_sync=False)
        a, b = Data(name="same-name"), Data(name="same-name")
        assert agent.cache_path(a) != agent.cache_path(b)

    def test_attribute_of_defaults(self, runtime):
        topo, rt = runtime
        agent = rt.attach(topo.worker_hosts[0], auto_sync=False)
        data = Data(name="x")
        assert agent.attribute_of(data) is DEFAULT_ATTRIBUTE
        attr = Attribute(name="custom", replica=3)
        agent.set_attribute(data, attr)
        assert agent.attribute_of(data).name == "custom"

    def test_sync_view_reservoir_vs_client(self, runtime):
        topo, rt = runtime
        reservoir = rt.attach(topo.worker_hosts[0], auto_sync=False, reservoir=True)
        client = rt.attach(topo.worker_hosts[1], auto_sync=False, reservoir=False)
        data = Data(name="locally-created")
        content = FileContent.from_seed("locally-created", 1)
        for agent in (reservoir, client):
            agent.filesystem.write(agent.cache_path(data), content)
            agent.register_local(data, content_present=True)
        # A reservoir host advertises everything in its cache; a client host
        # only advertises scheduler-managed data.
        assert data.uid in reservoir.sync_view()
        assert data.uid not in client.sync_view()
        client.mark_managed(data.uid)
        assert data.uid in client.sync_view()

    def test_local_content_roundtrip_and_removal(self, runtime):
        topo, rt = runtime
        agent = rt.attach(topo.worker_hosts[0], auto_sync=False)
        data = Data(name="thing")
        content = FileContent.from_seed("thing", 2)
        assert agent.local_content(data.uid) is None
        agent.filesystem.write(agent.cache_path(data), content)
        agent.register_local(data, content_present=True)
        assert agent.local_content(data.uid).verify(content)
        assert agent.remove_local(data.uid)
        assert not agent.remove_local(data.uid)
        assert agent.local_content(data.uid) is None

    def test_max_data_schedule_override_reaches_scheduler(self, runtime, env, drive):
        topo, rt = runtime
        greedy = rt.attach(topo.worker_hosts[0], auto_sync=False,
                           max_data_schedule=64)
        modest = rt.attach(topo.worker_hosts[1], auto_sync=False)
        master = rt.attach(topo.service_host, auto_sync=False)

        def publish():
            for i in range(40):
                content = FileContent.from_seed(f"item-{i}", 0.01)
                data = yield from master.bitdew.create_data(f"item-{i}",
                                                            content=content)
                yield from master.bitdew.put(data, content)
                yield from master.active_data.schedule(
                    data, Attribute(name=f"a{i}", replica=2, protocol="http"))

        drive(env, publish())
        greedy_result = drive(env, greedy.sync_once())
        modest_result = drive(env, modest.sync_once())
        assert len(greedy_result.to_download) == 40
        assert len(modest_result.to_download) == rt.data_scheduler.max_data_schedule


class TestMasterWorkerReport:
    def _record(self, cluster, transfer, unzip, execution):
        return TaskRecord(task_id=0, host_name="h", cluster=cluster,
                          started_at=0.0, transfer_s=transfer, unzip_s=unzip,
                          execution_s=execution, completed_at=1.0)

    def test_breakdowns(self):
        report = MasterWorkerReport(
            makespan_s=100.0, tasks_submitted=3, tasks_executed=3,
            results_collected=3,
            records=[self._record("a", 10, 2, 5), self._record("a", 20, 4, 7),
                     self._record("b", 30, 6, 9)])
        by_cluster = report.breakdown_by_cluster()
        assert by_cluster["a"]["transfer_s"] == pytest.approx(15)
        assert by_cluster["a"]["tasks"] == 2
        assert by_cluster["b"]["execution_s"] == pytest.approx(9)
        mean = report.mean_breakdown()
        assert mean["transfer_s"] == pytest.approx(20)
        assert mean["unzip_s"] == pytest.approx(4)

    def test_empty_report(self):
        report = MasterWorkerReport(makespan_s=0, tasks_submitted=0,
                                    tasks_executed=0, results_collected=0)
        assert report.mean_breakdown()["tasks"] == 0
        assert report.breakdown_by_cluster() == {}
