"""Setuptools shim.

The offline environment used for development has no ``wheel`` package, so
PEP 517 editable installs fail; this shim lets ``pip install -e .
--no-use-pep517`` (legacy develop mode) work.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
