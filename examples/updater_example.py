#!/usr/bin/env python
"""The "Updater" example of the paper (Listings 1 and 2).

A master pushes a 64 MB file update to every node of a 12-node cluster with
BitTorrent; each updated node reports its host name back to the master
through a tiny datum whose affinity points at the master's pinned collector.
The master ends up with the list of updated hosts — without ever addressing
a single node explicitly.

Run with::

    python examples/updater_example.py
"""

from repro.apps import UpdaterApplication
from repro.core import BitDewEnvironment
from repro.net import cluster_topology
from repro.sim import Environment


def main() -> None:
    env = Environment()
    topology = cluster_topology(env, n_workers=12)
    runtime = BitDewEnvironment(topology, sync_period_s=2.0)

    app = UpdaterApplication(runtime, master_host=topology.service_host,
                             update_size_mb=64, protocol="bittorrent",
                             lifetime_s=3600.0)
    app.register_updatees()
    env.process(app.start())

    runtime.run(until=300)

    print(f"Update data: {app.update_data.name!r} "
          f"({app.update_data.size_mb:.1f} MB, uid {app.update_data.uid[:8]}...)")
    print(f"{app.updated_count} / {len(topology.worker_hosts)} nodes reported "
          f"the update after {env.now:.0f} simulated seconds:")
    for name in sorted(app.updatees):
        stats = runtime.agent(name).stats.get(app.update_data.uid)
        if stats and stats.download_time_s:
            print(f"  - {name}: downloaded in {stats.download_time_s:.1f} s "
                  f"({(stats.bandwidth_mbps or 0):.1f} MB/s)")
        else:
            print(f"  - {name}")
    assert app.all_updated(), "some nodes missed the update"


if __name__ == "__main__":
    main()
