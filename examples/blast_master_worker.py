#!/usr/bin/env python
"""BLAST master/worker on a Grid'5000-style platform (paper §5, Figures 5-6).

Runs the BLAST application twice on the same 24-worker platform — once with
the shared files (Application binary + Genebase) distributed over FTP, once
over BitTorrent — and prints the total time and the transfer/unzip/execution
breakdown, i.e. a miniature of Figures 5 and 6.

The Genebase is scaled down (256 MB instead of 2.68 GB) so the example runs
in seconds; pass ``--paper-scale`` for the full-size Genebase.

Run with::

    python examples/blast_master_worker.py [--paper-scale] [--workers N]
"""

import argparse

from repro.apps import BlastParameters, build_blast_application
from repro.core import BitDewEnvironment
from repro.net import grid5000_testbed
from repro.sim import Environment
from repro.transfer.registry import default_registry


def run_once(n_workers: int, protocol: str, parameters: BlastParameters) -> dict:
    env = Environment()
    topology = grid5000_testbed(env, total_nodes=n_workers)
    registry = default_registry(env, topology.network, bittorrent_mode="fluid")
    runtime = BitDewEnvironment(topology, registry=registry,
                                sync_period_s=20.0, monitor_period_s=10.0,
                                max_data_schedule=2,
                                heartbeat_period_s=10.0)
    app = build_blast_application(runtime, master_host=topology.service_host,
                                  n_tasks=len(topology.worker_hosts),
                                  transfer_protocol=protocol,
                                  parameters=parameters)
    app.register_workers()
    report = app.run(deadline_s=100_000.0, poll_s=30.0)
    breakdown = report.mean_breakdown()
    return {
        "protocol": protocol,
        "makespan_s": report.makespan_s,
        "tasks": report.tasks_executed,
        "results": report.results_collected,
        "transfer_s": breakdown["transfer_s"],
        "unzip_s": breakdown["unzip_s"],
        "execution_s": breakdown["execution_s"],
        "by_cluster": report.breakdown_by_cluster(),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=32,
                        help="number of worker nodes (default: 32)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the full 2.68 GB Genebase of the paper")
    args = parser.parse_args()

    if args.paper_scale:
        parameters = BlastParameters()
    else:
        parameters = BlastParameters(genebase_mb=512.0,
                                     execution_reference_s=120.0,
                                     unzip_reference_s=30.0)

    results = [run_once(args.workers, protocol, parameters)
               for protocol in ("ftp", "bittorrent")]

    print(f"\nBLAST master/worker on {args.workers} Grid'5000 workers "
          f"(Genebase {parameters.genebase_mb:.0f} MB)\n")
    header = f"{'protocol':12s} {'total (s)':>10s} {'transfer':>10s} " \
             f"{'unzip':>8s} {'execution':>10s} {'results':>8s}"
    print(header)
    print("-" * len(header))
    for result in results:
        print(f"{result['protocol']:12s} {result['makespan_s']:10.0f} "
              f"{result['transfer_s']:10.0f} {result['unzip_s']:8.0f} "
              f"{result['execution_s']:10.0f} {result['results']:8.0f}")

    ftp, bt = results
    transfer_ratio = ftp["transfer_s"] / max(bt["transfer_s"], 1e-9)
    total_ratio = ftp["makespan_s"] / max(bt["makespan_s"], 1e-9)
    if transfer_ratio >= 1.0:
        print(f"\nBitTorrent shrinks the mean transfer time by {transfer_ratio:.1f}x "
              f"and the total time by {total_ratio:.1f}x at this scale "
              "(the gap widens with more workers — see Figure 5).")
    else:
        print(f"\nAt this small scale FTP still wins "
              f"(BitTorrent transfer is {1.0 / transfer_ratio:.1f}x slower) — "
              "exactly the paper's observation for 10-20 workers; "
              "add workers to see the crossover of Figure 5.")

    print("\nPer-cluster breakdown with BitTorrent (transfer / unzip / execution):")
    for cluster, values in bt["by_cluster"].items():
        print(f"  {cluster:12s} {values['transfer_s']:8.0f} / "
              f"{values['unzip_s']:6.0f} / {values['execution_s']:8.0f} s "
              f"({values['tasks']:.0f} tasks)")


if __name__ == "__main__":
    main()
