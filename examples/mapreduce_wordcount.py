#!/usr/bin/env python
"""Distributed MapReduce word count on BitDew (the paper's future-work item).

The conclusion of the paper announces "support for distributed MapReduce
operations" as a programming abstraction to be built on top of BitDew.  This
example runs a word count over a small corpus: the input is sliced and
scattered to mapper hosts, the intermediate partitions travel to the reducers
purely through affinity attributes, and the reduced outputs flow back to the
master's collector.

Run with::

    python examples/mapreduce_wordcount.py
"""

from collections import Counter

from repro.apps import MapReduceJob
from repro.core import BitDewEnvironment
from repro.net import cluster_topology
from repro.sim import Environment

CORPUS = (
    "bitdew is a programmable environment for large scale data management "
    "and distribution on desktop grids "
    "data are tagged with attributes replica fault tolerance lifetime "
    "affinity and protocol and the runtime schedules the data to the hosts "
    "the computation follows the data instead of the data following the "
    "computation "
) * 40


def main() -> None:
    env = Environment()
    topology = cluster_topology(env, n_workers=8)
    runtime = BitDewEnvironment(topology, sync_period_s=1.0,
                                monitor_period_s=0.2, max_data_schedule=8)

    job = MapReduceJob(runtime, master_host=topology.service_host,
                       input_payload=CORPUS.encode("utf-8"),
                       n_map_slices=6, n_reducers=2)
    job.assign_workers()
    result = job.run(deadline_s=2000, poll_s=2.0)

    expected = Counter(CORPUS.lower().split())
    print(f"MapReduce finished in {result.makespan_s:.0f} simulated seconds "
          f"({result.map_tasks} map tasks, {result.reduce_tasks} reduce tasks, "
          f"{result.intermediate_data} intermediate files).\n")
    print("Top 10 words:")
    for word, count in sorted(result.output.items(), key=lambda kv: -kv[1])[:10]:
        print(f"  {word:15s} {count:5d}")
    assert result.output == dict(expected), "distributed result differs from sequential"
    print("\nDistributed result matches the sequential word count. ✔")


if __name__ == "__main__":
    main()
