#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs the experiment harness behind ``benchmarks/`` (Tables 1-3, Figures 3a-c,
4, 5, 6) and prints the same rows/series the paper reports.  Use ``--quick``
for small grids (a couple of minutes) or ``--paper-scale`` for the full
configuration of the paper (much longer).  Each harness call is a registered
scenario: the same runs are available one-by-one through ``python -m repro
run <scenario>`` (see ``docs/EXPERIMENTS.md`` for the catalog).

Run with::

    python examples/reproduce_paper.py --quick
"""

import argparse
import time

from repro.bench import (
    run_fig3a,
    run_fig3bc,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table2,
    run_table3,
    table1_testbed,
)
from repro.bench.reporting import format_table


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--quick", action="store_true",
                       help="small grids (default)")
    group.add_argument("--paper-scale", action="store_true",
                       help="the paper's full grids (slow)")
    args = parser.parse_args()

    if args.paper_scale:
        grids = dict(table2_creations=5000, table3=(50, 500),
                     fig3_sizes=(10, 50, 100, 250, 500),
                     fig3_nodes=(10, 50, 100, 150, 250),
                     fig5_workers=(10, 50, 100, 150, 250),
                     fig6_nodes=400)
    else:
        grids = dict(table2_creations=1500, table3=(25, 100),
                     fig3_sizes=(10, 100, 500), fig3_nodes=(10, 50, 150),
                     fig5_workers=(10, 50, 100), fig6_nodes=80)

    start = time.time()

    banner("Table 1 — Grid testbed configuration")
    print(format_table(table1_testbed()))

    banner("Table 2 — data creations/sec (thousands)")
    table2 = run_table2(n_creations=grids["table2_creations"])
    print(format_table([{"channel": channel, **{k: round(v, 2) for k, v in row.items()}}
                        for channel, row in table2.items()]))

    banner("Table 3 — catalog publish: DDC (DHT) vs DC")
    nodes, pairs = grids["table3"]
    table3 = run_table3(n_nodes=nodes, pairs_per_node=pairs)
    print(format_table([{k: v for k, v in table3.items()}]))

    banner("Figure 3a — distribution completion time (s), FTP vs BitTorrent")
    fig3a = run_fig3a(sizes_mb=grids["fig3_sizes"], node_counts=grids["fig3_nodes"])
    print(format_table([{k: r[k] for k in ("protocol", "size_mb", "n_nodes",
                                           "completion_s")} for r in fig3a]))

    banner("Figures 3b/3c — BitDew+FTP overhead over FTP alone")
    fig3bc = run_fig3bc(sizes_mb=grids["fig3_sizes"], node_counts=grids["fig3_nodes"])
    print(format_table(fig3bc))

    banner("Figure 4 — fault-tolerance scenario (DSL-Lab)")
    fig4 = run_fig4()
    print(format_table([{k: r[k] for k in ("host", "replacement", "wait_s",
                                           "download_s", "bandwidth_kbps")}
                        for r in fig4["rows"]]))
    print(f"live replicas: {fig4['live_replicas']} / {fig4['requested_replicas']}; "
          f"failure-detection timeout: {fig4['timeout_s']} s")

    banner("Figure 5 — BLAST total execution time vs number of workers")
    fig5 = run_fig5(worker_counts=grids["fig5_workers"])
    print(format_table([{k: r[k] for k in ("protocol", "n_workers", "makespan_s",
                                           "results_collected")} for r in fig5]))

    banner("Figure 6 — BLAST breakdown per cluster (transfer / unzip / execution)")
    fig6 = run_fig6(total_nodes=grids["fig6_nodes"])
    print(format_table(fig6, columns=["protocol", "cluster", "transfer_s",
                                      "unzip_s", "execution_s", "tasks"]))

    print(f"\nAll experiments regenerated in {time.time() - start:.0f} s wall clock.")


if __name__ == "__main__":
    main()
