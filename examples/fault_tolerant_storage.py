#!/usr/bin/env python
"""Fault-tolerant replicated storage on a volatile ADSL platform (paper §4.4).

A 5 MB datum is created with ``replica = 5, fault_tolerance = true``; every
20 seconds one of the machines holding it crashes while a fresh machine
joins.  The runtime notices each crash through the heartbeat timeout
(3 x 1 s) and re-schedules the datum so that five live replicas always
exist — the scenario behind the paper's Figure 4, printed here as a
text Gantt chart.

Run with::

    python examples/fault_tolerant_storage.py
"""

from repro.bench.fault import run_fig4


def gantt_bar(start: float, duration: float, scale: float = 0.5,
              symbol: str = "#") -> str:
    return " " * int(start * scale) + symbol * max(1, int(duration * scale))


def main() -> None:
    result = run_fig4(size_mb=5.0, replica=5, n_initial=5, n_spare=5,
                      crash_interval_s=20.0, settle_s=60.0, horizon_s=260.0)

    print("Fault-tolerance scenario on DSL-Lab "
          f"(failure-detection timeout: {result['timeout_s']:.0f} s)\n")
    print(f"{'host':8s} {'wait (s)':>9s} {'download (s)':>13s} "
          f"{'bandwidth (KB/s)':>17s}")
    print("-" * 52)
    for row in result["rows"]:
        wait = f"{row['wait_s']:.1f}" if row["wait_s"] is not None else "-"
        print(f"{row['host']:8s} {wait:>9s} {row['download_s']:>13.1f} "
              f"{row['bandwidth_kbps']:>17.0f}"
              + ("   (replacement)" if row["replacement"] else ""))

    print("\nTimeline of the replacement hosts "
          "(each '#' is ~2 s; '.' marks the wait before the reschedule):")
    for row in result["replacement_rows"]:
        wait_bar = gantt_bar(row["attached_at"], row["wait_s"], symbol=".")
        dl_bar = gantt_bar(0, row["download_s"], symbol="#")
        print(f"{row['host']:8s} |{wait_bar}{dl_bar}")

    print(f"\nInjected {result['crashes']} crashes and {result['joins']} "
          f"arrivals; live replicas at the end: "
          f"{result['live_replicas']} / {result['requested_replicas']}")


if __name__ == "__main__":
    main()
