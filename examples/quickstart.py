#!/usr/bin/env python
"""Quickstart: create a datum, put it in the data space, replicate it everywhere.

This is the smallest end-to-end BitDew program: a master attaches to the
runtime, creates a data slot from a 16 MB file, uploads it, tags it with
``replica = -1`` (send to every node) and the FTP protocol, and lets the
Data Scheduler do the rest.  Every worker's life-cycle handler reports when
the copy lands in its local cache.

Run with::

    python examples/quickstart.py
"""

from repro.core import ActiveDataEventHandler, BitDewEnvironment
from repro.net import cluster_topology
from repro.sim import Environment
from repro.storage import FileContent


class PrintCopies(ActiveDataEventHandler):
    """A life-cycle callback: print every datum copied to this host."""

    def __init__(self, host_name: str, env: Environment):
        self.host_name = host_name
        self.env = env

    def on_data_copy_event(self, data, attribute):
        print(f"[{self.env.now:7.2f}s] {self.host_name}: received "
              f"{data.name!r} ({data.size_mb:.0f} MB, attribute {attribute.name!r})")


def main() -> None:
    env = Environment()
    topology = cluster_topology(env, n_workers=8)
    runtime = BitDewEnvironment(topology, sync_period_s=1.0)

    # The master drives the API from the first worker host.
    master = runtime.attach(topology.worker_hosts[0])
    content = FileContent.from_seed("dataset.bin", size_mb=16)

    def master_program():
        data = yield from master.bitdew.create_data("dataset.bin", content=content)
        yield from master.bitdew.put(data, content)
        attribute = master.bitdew.create_attribute(
            "attr everywhere = { replica = -1, oob = ftp }")
        yield from master.active_data.schedule(data, attribute)
        print(f"[{env.now:7.2f}s] master: scheduled {data.name!r} "
              f"with {attribute.describe()}")
        return data

    env.process(master_program())

    # Attach the remaining workers; each installs a copy-event handler.
    for host in topology.worker_hosts[1:]:
        agent = runtime.attach(host)
        agent.active_data.add_callback(PrintCopies(host.name, env))

    runtime.run(until=60)

    replicated = [a.host.name for a in runtime.agents.values()
                  if a.cached_uids() and all(a.has_content(uid) for uid in a.cached_uids())]
    print(f"\nAfter {env.now:.0f} simulated seconds, "
          f"{len(replicated)} hosts hold the dataset:")
    for name in sorted(replicated):
        print(f"  - {name}")
    owners = runtime.data_scheduler.owners_of(
        next(iter(runtime.agents[topology.worker_hosts[0].name].cached_uids())))
    print(f"Data Scheduler tracks {len(owners)} active owners; "
          f"the DHT knows {len(runtime.ddc.ring.nodes)} participants.")


if __name__ == "__main__":
    main()
